// Tests for timed fault schedules (FaultSchedule / FaultTimeline), the
// simulators' run_with_faults truncation semantics, and the sender-side
// recovery engine (sim/recovery.hpp) — including the serial/parallel
// bit-identity guarantee under faults.
#include "sim/recovery.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "base/error.hpp"
#include "base/rng.hpp"
#include "core/cycle_multipath.hpp"
#include "embed/classical.hpp"
#include "obs/trace.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/phase.hpp"
#include "sim/store_forward.hpp"
#include "sim/workloads.hpp"

namespace hyperpath {
namespace {

using obs::RingBufferSink;
using obs::TraceEvent;
using obs::TraceEventKind;

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_transmissions, b.total_transmissions);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.max_queue, b.max_queue);
  EXPECT_EQ(a.dim_transmissions, b.dim_transmissions);
  EXPECT_EQ(a.latency, b.latency);
}

void expect_identical(const FaultRunResult& a, const FaultRunResult& b) {
  expect_identical(a.sim, b.sim);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.lost, b.lost);
  ASSERT_EQ(a.fates.size(), b.fates.size());
  for (std::size_t i = 0; i < a.fates.size(); ++i) {
    EXPECT_EQ(a.fates[i], b.fates[i]) << "fate of packet " << i;
  }
}

std::vector<Packet> random_workload(int dims, int count, std::uint64_t seed) {
  Rng rng(seed);
  const Hypercube q(dims);
  std::vector<Packet> out;
  for (int i = 0; i < count; ++i) {
    Packet p;
    const Node s = static_cast<Node>(rng.below(q.num_nodes()));
    const Node d = static_cast<Node>(rng.below(q.num_nodes()));
    p.route = ecube_route(q, s, d);
    p.release = static_cast<int>(rng.below(3));
    out.push_back(std::move(p));
  }
  return out;
}

// ---------------------------------------------------------------------------
// FaultSet node faults + random validation (satellite regression)

TEST(FaultSetNode, KillNodeKillsAllIncidentLinks) {
  FaultSet f(3);
  f.kill_node(0b000);
  EXPECT_TRUE(f.node_dead(0b000));
  EXPECT_EQ(f.num_dead_nodes(), 1u);
  EXPECT_EQ(f.num_dead_directed(), 6u);  // 2n with n = 3
  for (Dim d = 0; d < 3; ++d) {
    EXPECT_TRUE(f.link_dead(0b000, Node{1} << d));
    EXPECT_TRUE(f.link_dead(Node{1} << d, 0b000));
  }
  EXPECT_FALSE(f.link_dead(0b011, 0b111));
}

TEST(FaultSetNode, PathWithDeadIntermediateNodeIsDead) {
  FaultSet f(3);
  f.kill_node(0b001);
  EXPECT_FALSE(f.path_alive({0b000, 0b001, 0b011}));
  EXPECT_TRUE(f.path_alive({0b000, 0b010, 0b011}));
  // Even a path that only *ends* at the dead node is dead.
  EXPECT_FALSE(f.path_alive({0b011, 0b001}));
}

TEST(FaultSetNode, ReviveRestoresOverlappingLinkKills) {
  // Kill a link directly AND via a node fault; reviving the node alone must
  // leave the directly-killed link dead.
  FaultSet f(3);
  f.kill_link(0b000, 0b001);
  f.kill_node(0b000);
  f.revive_node(0b000);
  EXPECT_FALSE(f.node_dead(0b000));
  EXPECT_TRUE(f.link_dead(0b000, 0b001));
  EXPECT_FALSE(f.link_dead(0b000, 0b010));
  f.revive_link(0b000, 0b001);
  EXPECT_EQ(f.num_dead_directed(), 0u);
}

TEST(FaultSetNode, RandomNodesKillsRequestedCount) {
  Rng rng(3);
  const auto f = FaultSet::random_nodes(4, 5, rng);
  EXPECT_EQ(f.num_dead_nodes(), 5u);
}

TEST(FaultSetRandom, ThrowsInsteadOfLoopingWhenCountTooLarge) {
  Rng rng(1);
  // Q_3 has 12 physical links; asking for more must throw, not spin.
  EXPECT_THROW(FaultSet::random(3, 13, rng), Error);
  EXPECT_THROW(FaultSet::random(3, -1, rng), Error);
  EXPECT_THROW(FaultSet::random_nodes(3, 9, rng), Error);
  EXPECT_THROW(FaultSet::random_nodes(3, -2, rng), Error);
  // The boundary cases are fine.
  EXPECT_EQ(FaultSet::random(3, 12, rng).num_dead_directed(), 24u);
  EXPECT_EQ(FaultSet::random_nodes(3, 8, rng).num_dead_nodes(), 8u);
}

// ---------------------------------------------------------------------------
// FaultSchedule

TEST(FaultSchedule, KeepsEventsSortedByStep) {
  FaultSchedule s(3);
  s.link_down(5, 0b000, 0b001);
  s.node_down(1, 0b011);
  s.link_down(5, 0b010, 0b110);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.events()[0].step, 1);
  EXPECT_EQ(s.events()[1].step, 5);
  // Stable within a step: insertion order preserved.
  EXPECT_EQ(s.events()[1].u, 0b000u);
  EXPECT_EQ(s.events()[2].u, 0b010u);
}

TEST(FaultSchedule, StateAtAppliesPrefix) {
  FaultSchedule s(3);
  s.transient_link(2, 10, 0b000, 0b001);
  s.node_down(6, 0b111);
  EXPECT_FALSE(s.state_at(1).link_dead(0b000, 0b001));
  EXPECT_TRUE(s.state_at(2).link_dead(0b000, 0b001));
  EXPECT_TRUE(s.state_at(9).link_dead(0b000, 0b001));
  EXPECT_FALSE(s.state_at(10).link_dead(0b000, 0b001));
  EXPECT_FALSE(s.state_at(5).node_dead(0b111));
  EXPECT_TRUE(s.state_at(6).node_dead(0b111));
  const FaultSet end = s.final_state();
  EXPECT_TRUE(end.node_dead(0b111));
  EXPECT_FALSE(end.link_dead(0b000, 0b001));
}

TEST(FaultSchedule, SerializeParseRoundTrip) {
  FaultSchedule s(4);
  s.link_down(0, 0b0000, 0b0001);
  s.transient_node(3, 9, 0b0101);
  s.link_up(12, 0b0000, 0b0001);
  const std::string text = s.serialize();
  const FaultSchedule parsed = FaultSchedule::parse(text);
  EXPECT_EQ(parsed.dims(), 4);
  ASSERT_EQ(parsed.events().size(), s.events().size());
  for (std::size_t i = 0; i < s.events().size(); ++i) {
    EXPECT_EQ(parsed.events()[i], s.events()[i]);
  }
}

TEST(FaultSchedule, ParseAcceptsCommentsAndRejectsGarbage) {
  const FaultSchedule ok = FaultSchedule::parse(
      "# a schedule\n"
      "dims 3\n"
      "\n"
      "0 link-down 0 1  # first fault\n"
      "4 node-down 7\n");
  EXPECT_EQ(ok.size(), 2u);
  EXPECT_THROW(FaultSchedule::parse("0 link-down 0 1\n"), Error);  // no dims
  EXPECT_THROW(FaultSchedule::parse("dims 3\n0 melt-down 1\n"), Error);
  EXPECT_THROW(FaultSchedule::parse("dims 3\n0 link-down 0\n"), Error);
  EXPECT_THROW(FaultSchedule::parse("dims 3\n0 link-down 0 3\n"), Error);
  EXPECT_THROW(FaultSchedule::parse("dims 3\nx link-down 0 1\n"), Error);
  EXPECT_THROW(FaultSchedule::parse("dims 3\ndims 3\n"), Error);
}

TEST(FaultTimeline, ExpandsNodeEventsAndReportsDeltas) {
  FaultSchedule s(3);
  s.node_down(2, 0b000);
  s.node_up(7, 0b000);
  FaultTimeline t(s);
  EXPECT_TRUE(t.advance_to(0).died.empty());
  const auto& at2 = t.advance_to(2);
  EXPECT_EQ(at2.died.size(), 6u);
  EXPECT_TRUE(std::is_sorted(at2.died.begin(), at2.died.end()));
  EXPECT_TRUE(t.link_dead(Hypercube(3).edge_id(Node{0b000}, Node{0b001})));
  const auto& at7 = t.advance_to(7);
  EXPECT_EQ(at7.repaired.size(), 6u);
  EXPECT_TRUE(t.dead_links().empty());
}

TEST(FaultTimeline, SameAdvanceDownUpCancelsOut) {
  FaultSchedule s(3);
  s.transient_link(3, 4, 0b000, 0b001);
  FaultTimeline t(s);
  // Jumping past both events in one advance reports neither transition.
  const auto& delta = t.advance_to(10);
  EXPECT_TRUE(delta.died.empty());
  EXPECT_TRUE(delta.repaired.empty());
  EXPECT_TRUE(t.dead_links().empty());
}

// ---------------------------------------------------------------------------
// run_with_faults truncation semantics

TEST(RunWithFaults, EmptyScheduleMatchesPlainRun) {
  const int dims = 5;
  const auto packets = random_workload(dims, 200, 21);
  StoreForwardSim sim(dims);
  const FaultSchedule empty(dims);
  const auto plain = sim.run(packets);
  const auto faulty = sim.run_with_faults(packets, empty);
  expect_identical(plain, faulty.sim);
  EXPECT_EQ(faulty.lost, 0u);
  EXPECT_EQ(faulty.delivered, packets.size());
  for (const PacketFate& f : faulty.fates) EXPECT_TRUE(f.delivered());
}

TEST(RunWithFaults, TruncatesInFlightPacketAtTheBreak) {
  // One packet on a 3-hop route; its second link dies at step 1, exactly
  // when the packet is waiting on it.
  const Hypercube q(3);
  std::vector<Packet> packets;
  packets.push_back({{0b000, 0b001, 0b011, 0b111}, 0, 0});
  FaultSchedule s(3);
  s.link_down(1, 0b001, 0b011);
  StoreForwardSim sim(3);
  RingBufferSink sink;
  const auto r = sim.run_with_faults(packets, s, Arbitration::kFifo, 1 << 22,
                                     &sink);
  EXPECT_EQ(r.lost, 1u);
  EXPECT_EQ(r.delivered, 0u);
  ASSERT_EQ(r.fates.size(), 1u);
  EXPECT_EQ(r.fates[0].kind, PacketFate::Kind::kLost);
  EXPECT_EQ(r.fates[0].step, 1);
  EXPECT_EQ(r.fates[0].hops, 1);  // completed the first hop
  EXPECT_EQ(r.fates[0].link, q.edge_id(Node{0b001}, Node{0b011}));
  // Trace: one kFault pair (both directions), one kDrop at step 1.
  EXPECT_EQ(sink.total(TraceEventKind::kFault), 2u);
  EXPECT_EQ(sink.total(TraceEventKind::kDrop), 1u);
  EXPECT_EQ(sink.total(TraceEventKind::kArrive), 0u);
}

TEST(RunWithFaults, RepairedLinkCarriesTrafficAgain) {
  // Same route, but the link heals before the packet is released.
  std::vector<Packet> packets;
  packets.push_back({{0b000, 0b001, 0b011, 0b111}, 6, 0});
  FaultSchedule s(3);
  s.transient_link(1, 5, 0b001, 0b011);
  StoreForwardSim sim(3);
  RingBufferSink sink;
  const auto r = sim.run_with_faults(packets, s, Arbitration::kFifo, 1 << 22,
                                     &sink);
  EXPECT_EQ(r.delivered, 1u);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(sink.total(TraceEventKind::kFault), 2u);
  EXPECT_EQ(sink.total(TraceEventKind::kRepair), 2u);
}

TEST(RunWithFaults, NodeFaultTruncatesTrafficThroughIt) {
  // Every packet routed through the dead node is truncated; others pass.
  const int dims = 4;
  const auto packets = random_workload(dims, 150, 5);
  FaultSchedule s(dims);
  s.node_down(0, 0b0110);
  StoreForwardSim sim(dims);
  const auto r = sim.run_with_faults(packets, s);
  EXPECT_EQ(r.delivered + r.lost, packets.size());
  EXPECT_GT(r.lost, 0u);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (!r.fates[i].delivered()) {
      // The break must be a link incident to the dead node.
      const Hypercube q(dims);
      const auto [tail, dim] = q.edge_of_id(r.fates[i].link);
      const Node head = q.neighbor(tail, dim);
      EXPECT_TRUE(tail == 0b0110 || head == 0b0110);
    }
  }
}

TEST(RunWithFaults, SerialAndParallelAreBitIdentical) {
  const int dims = 6;
  const auto packets = random_workload(dims, 400, 33);
  FaultSchedule s(dims);
  Rng rng(7);
  const Hypercube q(dims);
  for (int i = 0; i < 12; ++i) {
    const Node u = static_cast<Node>(rng.below(q.num_nodes()));
    const Dim d = static_cast<Dim>(rng.below(dims));
    s.link_down(static_cast<int>(rng.below(8)), u, q.neighbor(u, d));
  }
  s.transient_node(2, 9, 0b010101);

  StoreForwardSim serial(dims);
  RingBufferSink serial_sink;
  const auto a = serial.run_with_faults(packets, s, Arbitration::kFifo,
                                        1 << 22, &serial_sink);
  for (int threads : {1, 2, 5}) {
    ParallelStoreForwardSim par(dims, threads);
    RingBufferSink par_sink;
    const auto b = par.run_with_faults(packets, s, 1 << 22, &par_sink);
    expect_identical(a, b);
    ASSERT_EQ(serial_sink.total(), par_sink.total());
    EXPECT_EQ(serial_sink.events(), par_sink.events());
  }
}

// ---------------------------------------------------------------------------
// Recovery engine

TEST(Recovery, NoFaultsDeliversEverythingInOneWave) {
  const auto emb = theorem1_cycle_embedding(6);
  const FaultSchedule empty(6);
  const auto r = run_recovery(emb, empty);
  EXPECT_EQ(r.messages_complete, r.messages_total);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_EQ(r.waves, 1);
  EXPECT_EQ(r.delivery_rate(), 1.0);
  EXPECT_EQ(r.goodput(), 1.0);
  EXPECT_EQ(r.messages_recovered, 0u);
}

TEST(Recovery, RetransmitsOntoSurvivingPathAfterLoss) {
  // Kill one link of one bundle path mid-run; with threshold w the lost
  // fragment must be retransmitted on another path and still arrive.
  const auto emb = theorem1_cycle_embedding(6);
  const std::span<const HostPath> bundle = emb.paths(0);
  ASSERT_GE(bundle.size(), 2u);
  // Break the longest path of bundle 0 on its middle link at step 0, so its
  // fragment is truncated before crossing.
  const HostPath* victim = &bundle[0];
  for (const HostPath& p : bundle) {
    if (p.size() > victim->size()) victim = &p;
  }
  ASSERT_GE(victim->size(), 3u);
  FaultSchedule s(6);
  s.link_down(0, (*victim)[1], (*victim)[2]);

  RecoveryConfig cfg;
  cfg.timeout = 4;
  cfg.max_retries = 3;
  RingBufferSink sink;
  const auto r = run_recovery(emb, s, cfg, &sink);
  EXPECT_EQ(r.messages_complete, r.messages_total);
  EXPECT_GT(r.retransmissions, 0u);
  EXPECT_GE(r.waves, 2);
  EXPECT_GT(r.messages_recovered, 0u);
  EXPECT_EQ(sink.total(TraceEventKind::kRetransmit), r.retransmissions);
  EXPECT_GT(r.recovery_latency.count(), 0u);
  EXPECT_LT(r.goodput(), 1.0);  // the truncated hops were wasted
}

TEST(Recovery, IdaThresholdCompletesWithoutRetransmission) {
  // With threshold w-1 a single dead path per bundle costs nothing: the
  // other w-1 fragments complete the message, and the engine suppresses
  // the retransmit of the lost fragment.
  const auto emb = theorem1_cycle_embedding(6);
  const std::span<const HostPath> bundle = emb.paths(0);
  const HostPath* victim = &bundle[0];
  for (const HostPath& p : bundle) {
    if (p.size() > victim->size()) victim = &p;
  }
  FaultSchedule s(6);
  s.link_down(0, (*victim)[1], (*victim)[2]);

  RecoveryConfig cfg;
  cfg.threshold = emb.width() - 1;
  // Generous timeout: every surviving fragment arrives before any loss is
  // even detected, so no retransmission can fire for a completed message.
  cfg.timeout = 4096;
  const auto r = run_recovery(emb, s, cfg);
  EXPECT_EQ(r.messages_complete, r.messages_total);
  EXPECT_GT(r.fragments_lost, 0u);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_EQ(r.waves, 1);
}

TEST(Recovery, ExhaustsRetriesWhenEveryPathIsDead) {
  // Sever every bundle path of guest edge 0 permanently: its message can
  // never complete, and each lost fragment consumes its full retry budget.
  const auto emb = theorem1_cycle_embedding(6);
  const Node src = emb.host_of(0);
  FaultSchedule s(6);
  s.node_down(0, src);  // kills all paths out of the source
  RecoveryConfig cfg;
  cfg.timeout = 2;
  cfg.max_retries = 2;
  const auto r = run_recovery(emb, s, cfg);
  EXPECT_LT(r.messages_complete, r.messages_total);
  EXPECT_GT(r.fragments_exhausted, 0u);
  EXPECT_LT(r.delivery_rate(), 1.0);
  // Bounded retries: never more retransmissions than budget allows.
  EXPECT_LE(r.retransmissions,
            r.fragments_lost * static_cast<std::uint64_t>(cfg.max_retries));
}

TEST(Recovery, TransientFaultHealsAndMessageCompletes) {
  // Dedicated single-message embedding: a width-2 bundle where BOTH paths
  // are down initially and one heals.  The fragment retries with backoff
  // until the repair lands, then completes.
  const auto emb = gray_code_cycle_embedding(4);  // width 1
  const std::span<const HostPath> bundle = emb.paths(0);
  ASSERT_EQ(bundle.size(), 1u);
  const HostPath& path = bundle[0];
  ASSERT_GE(path.size(), 2u);
  FaultSchedule s(4);
  s.transient_link(0, 40, path[0], path[1]);

  RecoveryConfig cfg;
  cfg.timeout = 8;
  cfg.max_retries = 5;
  const auto r = run_recovery(emb, s, cfg);
  // Message 0's fragment is lost at release, then backed off past step 40
  // (8 + 16 + 32 > 40) and delivered on the healed path.
  EXPECT_TRUE(r.messages[0].complete);
  EXPECT_GT(r.messages[0].retransmissions, 0);
  EXPECT_EQ(r.messages_complete, r.messages_total);
}

TEST(Recovery, HugeRetryBudgetSaturatesBackoffInsteadOfOverflowing) {
  // Boundary of the exponential backoff: with timeout 1 and 200 retries the
  // naive wait `timeout << (attempts-1)` would shift past 63 bits (UB) by
  // attempt 65.  The saturating clamp must instead pin the wait at the step
  // horizon and resolve the fragment as exhausted — same bookkeeping as a
  // small budget, no overflow (the sanitizer jobs run this test).
  const auto emb = gray_code_cycle_embedding(4);  // width 1, nowhere to go
  const std::span<const HostPath> bundle = emb.paths(0);
  FaultSchedule s(4);
  // Repair lands just inside the horizon, so a repair stays pending and
  // every attempt really probes (the all-paths-dead shortcut never fires).
  RecoveryConfig cfg;
  cfg.timeout = 1;
  cfg.max_retries = 200;
  cfg.max_steps = 1 << 16;
  s.transient_link(0, cfg.max_steps - 1, bundle[0][0], bundle[0][1]);

  const auto r = run_recovery(emb, s, cfg);
  EXPECT_FALSE(r.messages[0].complete);
  EXPECT_GT(r.fragments_exhausted, 0u);
  // Waits 1, 2, 4, ... saturate at the horizon well before the budget is
  // spent, so far fewer than 200 retransmissions can have been scheduled.
  EXPECT_LE(r.messages[0].retransmissions, 20);
  EXPECT_EQ(r.messages_complete, r.messages_total - 1);
}

TEST(Recovery, OversizedTimeoutSaturatesOnTheFirstAttempt) {
  // The clamp also guards the first attempt: a timeout beyond the horizon
  // means detection can never happen inside the run, so the fragment is
  // exhausted immediately even though a repair is still pending.
  const auto emb = gray_code_cycle_embedding(4);
  const std::span<const HostPath> bundle = emb.paths(0);
  RecoveryConfig cfg;
  cfg.timeout = 1 << 30;
  cfg.max_retries = 70;
  cfg.max_steps = 1 << 12;
  FaultSchedule s(4);
  s.transient_link(0, cfg.max_steps - 1, bundle[0][0], bundle[0][1]);

  const auto r = run_recovery(emb, s, cfg);
  EXPECT_FALSE(r.messages[0].complete);
  EXPECT_EQ(r.messages[0].retransmissions, 0);
  EXPECT_GT(r.fragments_exhausted, 0u);
}

// The acceptance-criteria test: a schedule that leaves every bundle at
// least one surviving path (links and nodes both faulting) must deliver
// every message with bounded retries, and serial vs parallel transports
// must agree exactly — results, traces and metrics.
TEST(Recovery, AnySubThresholdScheduleDeliversEverythingBothTransports) {
  const auto emb = theorem1_cycle_embedding(8);
  const int w = emb.width();
  ASSERT_EQ(w, 5);
  const Hypercube q(8);

  // Greedily build a random fault schedule that keeps >= 1 alive path per
  // bundle in the final state (faults are permanent, so the final state is
  // the binding constraint for eventual delivery).
  Rng rng(97);
  FaultSchedule schedule(8);
  FaultSet accum(8);
  const auto every_bundle_survives = [&](const FaultSet& f) {
    for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
      const auto d = deliver_over_bundle(f, emb.paths(e));
      if (d.paths_alive == 0) return false;
    }
    return true;
  };
  int added = 0;
  for (int tries = 0; tries < 200 && added < 24; ++tries) {
    const Node u = static_cast<Node>(rng.below(q.num_nodes()));
    const Dim d = static_cast<Dim>(rng.below(8));
    const Node v = q.neighbor(u, d);
    if (accum.link_dead(u, v)) continue;
    accum.kill_link(u, v);
    if (!every_bundle_survives(accum)) {
      accum.revive_link(u, v);
      continue;
    }
    schedule.link_down(static_cast<int>(rng.below(30)), u, v);
    ++added;
  }
  ASSERT_GT(added, 10);  // the greedy pass found plenty of safe faults

  RecoveryConfig cfg;
  cfg.timeout = 8;
  cfg.max_retries = 6;
  RingBufferSink serial_sink;
  const auto serial = run_recovery(emb, schedule, cfg, &serial_sink);

  EXPECT_EQ(serial.messages_complete, serial.messages_total);
  EXPECT_EQ(serial.fragments_exhausted, 0u);
  EXPECT_LE(serial.retransmissions,
            serial.fragments_lost * static_cast<std::uint64_t>(cfg.max_retries));
  for (const MessageOutcome& m : serial.messages) {
    EXPECT_TRUE(m.complete);
    EXPECT_LE(m.retransmissions, w * cfg.max_retries);
  }

  cfg.parallel = true;
  cfg.threads = 3;
  RingBufferSink par_sink;
  const auto par = run_recovery(emb, schedule, cfg, &par_sink);

  // Identical aggregate metrics...
  EXPECT_EQ(par.messages_complete, serial.messages_complete);
  EXPECT_EQ(par.fragments_sent, serial.fragments_sent);
  EXPECT_EQ(par.fragments_delivered, serial.fragments_delivered);
  EXPECT_EQ(par.fragments_lost, serial.fragments_lost);
  EXPECT_EQ(par.retransmissions, serial.retransmissions);
  EXPECT_EQ(par.makespan, serial.makespan);
  EXPECT_EQ(par.waves, serial.waves);
  EXPECT_EQ(par.total_transmissions, serial.total_transmissions);
  EXPECT_EQ(par.useful_transmissions, serial.useful_transmissions);
  EXPECT_EQ(par.recovery_latency, serial.recovery_latency);
  // ...identical per-message outcomes...
  ASSERT_EQ(par.messages.size(), serial.messages.size());
  for (std::size_t e = 0; e < serial.messages.size(); ++e) {
    EXPECT_EQ(par.messages[e].complete, serial.messages[e].complete);
    EXPECT_EQ(par.messages[e].complete_step, serial.messages[e].complete_step);
    EXPECT_EQ(par.messages[e].first_loss_step,
              serial.messages[e].first_loss_step);
    EXPECT_EQ(par.messages[e].retransmissions,
              serial.messages[e].retransmissions);
  }
  // ...and a byte-identical trace stream.
  ASSERT_EQ(par_sink.total(), serial_sink.total());
  EXPECT_EQ(par_sink.events(), serial_sink.events());
}

// ---------------------------------------------------------------------------
// kDrop trace path of the static run_phase_with_faults (satellite)

TEST(DegradedPhaseTrace, DropEventsComeFirstWithOriginalIds) {
  const auto emb = gray_code_cycle_embedding(4);
  FaultSet f(4);
  f.kill_link(emb.host_of(0), emb.host_of(1));
  RingBufferSink sink;
  const auto r = run_phase_with_faults(f, emb, 2, &sink);
  EXPECT_EQ(r.dropped, 2u);
  const auto events = sink.events();
  ASSERT_GT(events.size(), 2u);

  // The kDrop events are flushed before the simulator trace begins, and
  // carry the dead link plus the packet's index in the *original* phase
  // packet list.
  const auto phase = phase_packets(emb, 2);
  const Hypercube q(4);
  const std::uint64_t dead = q.edge_id(emb.host_of(0), emb.host_of(1));
  std::size_t drops_seen = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind != TraceEventKind::kDrop) continue;
    EXPECT_EQ(i, drops_seen) << "kDrop must precede the simulator trace";
    ++drops_seen;
    EXPECT_EQ(events[i].step, 0);
    EXPECT_EQ(events[i].link, dead);
    // The dropped id indexes the original phase packet list, and that
    // packet's route really crosses the dead link.
    ASSERT_LT(events[i].packet, phase.size());
    EXPECT_FALSE(f.path_alive(phase[events[i].packet].route));
  }
  EXPECT_EQ(drops_seen, 2u);

  // Packet ids inside the simulator trace index the survivor list: every
  // arriving id must be < survivors, and survivors = delivered count.
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kArrive) {
      EXPECT_LT(e.packet, r.delivered);
    }
  }
  EXPECT_EQ(sink.total(TraceEventKind::kArrive), r.delivered);
}

}  // namespace
}  // namespace hyperpath
