// Unit tests for the flat-arena core (simcore.hpp) plus the active-set
// regression guarantees: per-step sweep cost must track *currently* live
// links, never the set of links that ever carried traffic (the map-based
// layout this replaced re-scanned every historical queue each step).
#include "sim/simcore.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <string>

#include "base/error.hpp"
#include "base/rng.hpp"
#include "sim/faults.hpp"
#include "sim/step_kernel.hpp"
#include "sim/store_forward.hpp"
#include "sim/workloads.hpp"

namespace hyperpath {
namespace {

using simcore::kNil;
using simcore::LinkBitmap;
using simcore::LinkFifoArena;

TEST(LinkFifoArena, FifoOrderAndWorklistRegistration) {
  LinkFifoArena arena(8, 16);
  std::vector<std::uint64_t> work;
  EXPECT_TRUE(arena.empty(3));

  arena.push_back(3, 10, work);
  arena.push_back(3, 11, work);
  arena.push_back(5, 12, work);
  arena.push_back(3, 13, work);
  // Only empty->nonempty transitions register the link.
  EXPECT_EQ(work, (std::vector<std::uint64_t>{3, 5}));
  EXPECT_EQ(arena.depth(3), 3u);
  EXPECT_EQ(arena.depth(5), 1u);

  std::vector<std::uint32_t> order;
  arena.for_each(3, [&](std::uint32_t id) { order.push_back(id); });
  EXPECT_EQ(order, (std::vector<std::uint32_t>{10, 11, 13}));

  EXPECT_EQ(arena.pop_front(3), 10u);
  EXPECT_EQ(arena.pop_front(3), 11u);
  EXPECT_EQ(arena.pop_front(3), 13u);
  EXPECT_TRUE(arena.empty(3));
  // Refilling an emptied link registers it again.
  arena.push_back(3, 14, work);
  EXPECT_EQ(work.back(), 3u);
}

TEST(LinkFifoArena, PopMaxPrefersEarliestOnTies) {
  LinkFifoArena arena(4, 8);
  std::vector<std::uint64_t> work;
  // keys: id 0 -> 2, id 1 -> 5, id 2 -> 5, id 3 -> 1
  const std::vector<int> key = {2, 5, 5, 1};
  for (std::uint32_t id = 0; id < 4; ++id) arena.push_back(1, id, work);
  const auto by_key = [&](std::uint32_t id) { return key[id]; };
  EXPECT_EQ(arena.pop_max(1, by_key), 1u);  // first of the two maxima
  EXPECT_EQ(arena.pop_max(1, by_key), 2u);
  EXPECT_EQ(arena.pop_max(1, by_key), 0u);
  EXPECT_EQ(arena.pop_max(1, by_key), 3u);
  EXPECT_TRUE(arena.empty(1));
  // Head/tail links survive arbitrary middle/end removals.
  arena.push_back(1, 5, work);
  arena.push_back(1, 6, work);
  EXPECT_EQ(arena.pop_max(1, [](std::uint32_t) { return 0; }), 5u);
  EXPECT_EQ(arena.pop_front(1), 6u);
  EXPECT_TRUE(arena.empty(1));
}

TEST(LinkFifoArena, ClearLinkEmptiesInConstantTime) {
  LinkFifoArena arena(4, 8);
  std::vector<std::uint64_t> work;
  for (std::uint32_t id = 0; id < 5; ++id) arena.push_back(2, id, work);
  arena.clear_link(2);
  EXPECT_TRUE(arena.empty(2));
  EXPECT_EQ(arena.depth(2), 0u);
  // The stale worklist entry is the caller's to compact; refilling must
  // re-link a clean queue.
  arena.push_back(2, 7, work);
  EXPECT_EQ(arena.depth(2), 1u);
  EXPECT_EQ(arena.pop_front(2), 7u);
}

TEST(LinkBitmap, SetTestClear) {
  LinkBitmap bits(130);
  EXPECT_FALSE(bits.test(0));
  EXPECT_FALSE(bits.test(129));
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_FALSE(bits.test(65));
  bits.clear(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_TRUE(bits.test(63));
}

/// A valid hypercube walk of `hops` edges that just zig-zags across
/// dimensions 0 and 1 — long routes without long geodesics.
HostPath zigzag_walk(Node start, int hops) {
  HostPath p{start};
  for (int h = 0; h < hops; ++h) {
    p.push_back(p.back() ^ (h % 2 == 0 ? 1u : 2u));
  }
  return p;
}

TEST(ActiveSetRegression, StepCostIgnoresHistoricallyActiveLinks) {
  // Phase A: a one-step burst that touches `burst` distinct links.  Phase
  // B: a single packet walking a long route through an otherwise idle
  // network.  The worklist accounting must come out at burst + ~1 visit per
  // tail step; the replaced map layout re-scanned all `burst` historical
  // queues every tail step (burst * walk_hops total).
  const int dims = 11;
  const Hypercube q(dims);
  const int burst = 2000;
  const int walk_hops = 400;

  std::vector<Packet> packets;
  for (int i = 0; i < burst; ++i) {
    // Distinct source nodes, one-hop routes: `burst` distinct links, all
    // busy exactly at step 0.
    const Node s = static_cast<Node>(i);
    packets.push_back({{s, q.neighbor(s, 0)}, 0, 0});
  }
  Packet walker;
  walker.route = zigzag_walk(0, walk_hops);
  walker.release = 2;  // enters after the burst has fully drained
  packets.push_back(walker);

  const auto r = StoreForwardSim(dims).run(packets);
  EXPECT_EQ(r.makespan, 2 + walk_hops);
  // Without faults there are no stale entries, so link_visits is exactly
  // sigma_steps(live links): burst links at step 0, the walker's current
  // link afterwards (plus one overlap-free slack bound).
  EXPECT_EQ(r.link_visits,
            static_cast<std::uint64_t>(burst) +
                static_cast<std::uint64_t>(walk_hops));
  // The historical-scaling failure mode would be ~burst * walk_hops.
  EXPECT_LT(r.link_visits,
            static_cast<std::uint64_t>(burst) * walk_hops / 100);
}

TEST(ActiveSetRegression, DroppedQueuesLeaveNoLingeringCost) {
  // Packets pile onto one link, a fault kills it, and a lone walker then
  // runs long past the drop.  The dead link's queue is emptied once; the
  // tail steps must cost one visit each, not re-visit the corpse.
  const int dims = 10;
  const Hypercube q(dims);
  const int pile = 500;
  const int walk_hops = 300;

  std::vector<Packet> packets;
  for (int i = 0; i < pile; ++i) {
    // All share the first hop 0 -> 1 (dimension 0), queueing on one link.
    packets.push_back({{0, q.neighbor(0, 0), q.neighbor(q.neighbor(0, 0), 1)},
                       0, 0});
  }
  Packet walker;
  walker.route = zigzag_walk(static_cast<Node>(q.num_nodes() - 4), walk_hops);
  walker.release = 3;
  packets.push_back(walker);

  FaultSchedule sched(dims);
  sched.link_down(2, 0, q.neighbor(0, 0));

  const auto r = StoreForwardSim(dims).run_with_faults(packets, sched);
  EXPECT_EQ(r.lost, static_cast<std::size_t>(pile) - 2);  // 2 escaped first
  // Visits: the pile link for steps 0..2 (the step-2 entry is the stale
  // one the drop pass emptied), the two escaped packets' second hops, and
  // the walker's tail — far below pile * walk_hops.
  EXPECT_LT(r.sim.link_visits, static_cast<std::uint64_t>(pile));
  EXPECT_EQ(r.sim.makespan, 3 + walk_hops);
}

TEST(RoutePlan, CompileLaysOutHopsNodesAndReleases) {
  const Hypercube q(4);
  std::vector<Packet> packets;
  packets.push_back({ecube_route(q, 0, 11), 0, 0});   // multi-hop
  packets.push_back({ecube_route(q, 5, 5), 3, 0});    // trivial (0 hops)
  packets.push_back({zigzag_walk(2, 6), 1, 0});       // non-geodesic walk
  const auto plan = simcore::RoutePlan::compile(q, packets);

  ASSERT_EQ(plan.num_routes(), packets.size());
  ASSERT_EQ(plan.route_offsets.size(), packets.size() + 1);
  EXPECT_EQ(plan.route_offsets.front(), 0u);
  std::size_t total_hops = 0;
  for (std::uint32_t r = 0; r < plan.num_routes(); ++r) {
    const HostPath& route = packets[r].route;
    ASSERT_EQ(plan.route_len[r], route.size() - 1) << "route " << r;
    EXPECT_EQ(plan.release[r], static_cast<std::uint32_t>(packets[r].release));
    EXPECT_EQ(plan.route_offsets[r + 1] - plan.route_offsets[r],
              plan.route_len[r]);
    // The node span shares the hop offsets (nodes start at offset + r).
    const auto nodes = plan.nodes(r);
    ASSERT_EQ(nodes.size(), route.size());
    EXPECT_TRUE(std::equal(nodes.begin(), nodes.end(), route.begin()));
    // Each hop's dense link id is exactly Hypercube::edge_id — the kernel
    // never recomputes it, so compile must get every one right.
    for (std::uint32_t h = 0; h < plan.route_len[r]; ++h) {
      EXPECT_EQ(plan.link_of_hop[plan.route_offsets[r] + h],
                q.edge_id(route[h], route[h + 1]))
          << "route " << r << " hop " << h;
    }
    total_hops += plan.route_len[r];
  }
  EXPECT_EQ(plan.link_of_hop.size(), total_hops);
  EXPECT_EQ(plan.route_offsets.back(), total_hops);
}

TEST(RoutePlan, EmptyPacketSetCompilesToEmptyPlan) {
  const auto plan = simcore::RoutePlan::compile(Hypercube(3), {});
  EXPECT_EQ(plan.num_routes(), 0u);
  ASSERT_EQ(plan.route_offsets.size(), 1u);
  EXPECT_EQ(plan.route_offsets.front(), 0u);
}

TEST(RoutePlan, ReportsInvalidRouteBeforeNegativeRelease) {
  const Hypercube q(3);
  // Nodes 0 and 3 differ in two bits: not a hypercube edge.  The broken
  // route must win over the negative release — the legacy setup paths
  // checked in that order and callers pin the message.
  Packet bad;
  bad.route = {Node{0}, Node{3}};
  bad.release = -1;
  try {
    simcore::RoutePlan::compile(q, {bad});
    FAIL() << "invalid route accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("packet route invalid"),
              std::string::npos)
        << e.what();
  }
  Packet late;
  late.route = ecube_route(q, 0, 1);
  late.release = -1;
  try {
    simcore::RoutePlan::compile(q, {late});
    FAIL() << "negative release accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("negative release time"),
              std::string::npos)
        << e.what();
  }
}

TEST(RoutePlan, RebuildReusesCapacityAndMatchesFreshCompile) {
  const Hypercube q(5);
  Rng rng(41);
  std::vector<Packet> big;
  for (int i = 0; i < 200; ++i) {
    const Node s = static_cast<Node>(rng.below(q.num_nodes()));
    const Node d = static_cast<Node>(rng.below(q.num_nodes()));
    big.push_back({ecube_route(q, s, d), static_cast<int>(rng.below(4)), 0});
  }
  std::vector<Packet> small(big.begin(), big.begin() + 7);

  simcore::RoutePlan plan;
  plan.rebuild(q, big);
  const std::size_t nodes_cap = plan.route_nodes.capacity();
  const std::size_t hops_cap = plan.link_of_hop.capacity();
  const std::size_t offsets_cap = plan.route_offsets.capacity();

  // Rebuilding with a smaller set must not shed capacity (the StepScratch
  // reuse contract: recovery waves and Monte-Carlo trials rebuild
  // thousands of times on one thread without reallocating).
  plan.rebuild(q, small);
  EXPECT_EQ(plan.route_nodes.capacity(), nodes_cap);
  EXPECT_EQ(plan.link_of_hop.capacity(), hops_cap);
  EXPECT_EQ(plan.route_offsets.capacity(), offsets_cap);

  const auto fresh = simcore::RoutePlan::compile(q, small);
  EXPECT_EQ(plan.route_nodes, fresh.route_nodes);
  EXPECT_EQ(plan.route_offsets, fresh.route_offsets);
  EXPECT_EQ(plan.link_of_hop, fresh.link_of_hop);
  EXPECT_EQ(plan.route_len, fresh.route_len);
  EXPECT_EQ(plan.release, fresh.release);
}

TEST(StepKernel, SortMovedMatchesStdSortOnBothPathsAndClearsMask) {
  Rng rng(0x5027);
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint32_t universe = 64 + static_cast<std::uint32_t>(
                                            rng.below(5000));
    const std::size_t words = (universe + 63) / 64;
    // Even trials stay under one id per mask word (the std::sort fallback
    // for sparse recovery waves); odd trials force the dense counting path.
    const std::size_t count =
        trial % 2 == 0 ? rng.below(words)
                       : words + rng.below(universe - words);
    std::vector<std::uint32_t> pool(universe);
    std::iota(pool.begin(), pool.end(), 0u);
    for (std::size_t i = 0; i < count; ++i) {
      std::swap(pool[i], pool[i + rng.below(universe - i)]);
    }
    std::vector<std::uint32_t> moved(pool.begin(), pool.begin() + count);
    std::vector<std::uint32_t> expected = moved;
    std::sort(expected.begin(), expected.end());

    std::vector<std::uint64_t> mask(words, 0);
    simcore::sort_moved(moved, mask);
    EXPECT_EQ(moved, expected) << "trial " << trial;
    // The mask must come back all-zero — sort_moved's own precondition for
    // the next sweep.
    for (const std::uint64_t w : mask) ASSERT_EQ(w, 0u) << "trial " << trial;
  }
}

TEST(ActiveSetProperty, ClearLinkStaleEntriesCompactInExactlyOneSweep) {
  // Randomized model of the simulators' worklist discipline: each step
  // clears some nonempty links (the fault-truncation pass), sweeps with
  // in-place compaction, then enqueues fresh packets.  The invariants under
  // test: every stale entry is visited exactly once (the sweep that drops
  // it), a stale entry only ever comes from clear_link, and after
  // compaction the worklist is exactly the set of nonempty links with no
  // duplicates — the precondition push_back's registration relies on.
  Rng rng(20260808);
  constexpr std::uint64_t kLinks = 48;
  constexpr std::uint32_t kPackets = 192;
  for (int trial = 0; trial < 20; ++trial) {
    simcore::LinkFifoArena arena(kLinks, kPackets);
    std::vector<std::uint32_t> worklist;
    std::vector<std::uint32_t> free_ids(kPackets);
    std::iota(free_ids.begin(), free_ids.end(), 0u);

    const auto enqueue_some = [&] {
      const int count = static_cast<int>(rng.below(40));
      for (int i = 0; i < count && !free_ids.empty(); ++i) {
        const std::size_t pick = rng.below(free_ids.size());
        const std::uint32_t id = free_ids[pick];
        free_ids[pick] = free_ids.back();
        free_ids.pop_back();
        arena.push_back(rng.below(kLinks), id, worklist);
      }
    };
    enqueue_some();

    for (int step = 0; step < 30; ++step) {
      // Fault truncation: each cleared nonempty link strands exactly one
      // worklist entry (nonempty links sit on the worklist exactly once).
      std::set<std::uint32_t> cleared;
      const int clears = static_cast<int>(rng.below(6));
      for (int i = 0; i < clears; ++i) {
        const std::uint64_t link = rng.below(kLinks);
        if (arena.empty(link)) continue;
        arena.for_each(link,
                       [&](std::uint32_t id) { free_ids.push_back(id); });
        arena.clear_link(link);
        cleared.insert(static_cast<std::uint32_t>(link));
      }

      // The sweep, as the kernels run it: serve one packet per live link,
      // compact in place, drop drained and stale entries.
      std::set<std::uint32_t> stale_seen;
      std::size_t out = 0;
      for (std::size_t i = 0; i < worklist.size(); ++i) {
        const std::uint32_t link = worklist[i];
        if (arena.empty(link)) {
          EXPECT_TRUE(cleared.count(link))
              << "stale entry for link " << link << " without a clear_link";
          EXPECT_TRUE(stale_seen.insert(link).second)
              << "stale link " << link << " visited twice in one sweep";
          continue;
        }
        free_ids.push_back(arena.pop_front(link));
        if (!arena.empty(link)) worklist[out++] = link;
      }
      worklist.resize(out);
      // Every clear produced exactly one stale visit — no more, no fewer.
      EXPECT_EQ(stale_seen, cleared) << "step " << step;

      // Post-compaction the worklist is precisely the nonempty links.
      const std::set<std::uint32_t> live(worklist.begin(), worklist.end());
      EXPECT_EQ(live.size(), worklist.size()) << "duplicate worklist entry";
      for (std::uint64_t link = 0; link < kLinks; ++link) {
        EXPECT_EQ(!arena.empty(link),
                  live.count(static_cast<std::uint32_t>(link)) == 1u)
            << "link " << link << " at step " << step;
      }

      enqueue_some();
    }
  }
}

}  // namespace
}  // namespace hyperpath
