// Unit tests for the flat-arena core (simcore.hpp) plus the active-set
// regression guarantees: per-step sweep cost must track *currently* live
// links, never the set of links that ever carried traffic (the map-based
// layout this replaced re-scanned every historical queue each step).
#include "sim/simcore.hpp"

#include <gtest/gtest.h>

#include "sim/faults.hpp"
#include "sim/store_forward.hpp"
#include "sim/workloads.hpp"

namespace hyperpath {
namespace {

using simcore::kNil;
using simcore::LinkBitmap;
using simcore::LinkFifoArena;

TEST(LinkFifoArena, FifoOrderAndWorklistRegistration) {
  LinkFifoArena arena(8, 16);
  std::vector<std::uint64_t> work;
  EXPECT_TRUE(arena.empty(3));

  arena.push_back(3, 10, work);
  arena.push_back(3, 11, work);
  arena.push_back(5, 12, work);
  arena.push_back(3, 13, work);
  // Only empty->nonempty transitions register the link.
  EXPECT_EQ(work, (std::vector<std::uint64_t>{3, 5}));
  EXPECT_EQ(arena.depth(3), 3u);
  EXPECT_EQ(arena.depth(5), 1u);

  std::vector<std::uint32_t> order;
  arena.for_each(3, [&](std::uint32_t id) { order.push_back(id); });
  EXPECT_EQ(order, (std::vector<std::uint32_t>{10, 11, 13}));

  EXPECT_EQ(arena.pop_front(3), 10u);
  EXPECT_EQ(arena.pop_front(3), 11u);
  EXPECT_EQ(arena.pop_front(3), 13u);
  EXPECT_TRUE(arena.empty(3));
  // Refilling an emptied link registers it again.
  arena.push_back(3, 14, work);
  EXPECT_EQ(work.back(), 3u);
}

TEST(LinkFifoArena, PopMaxPrefersEarliestOnTies) {
  LinkFifoArena arena(4, 8);
  std::vector<std::uint64_t> work;
  // keys: id 0 -> 2, id 1 -> 5, id 2 -> 5, id 3 -> 1
  const std::vector<int> key = {2, 5, 5, 1};
  for (std::uint32_t id = 0; id < 4; ++id) arena.push_back(1, id, work);
  const auto by_key = [&](std::uint32_t id) { return key[id]; };
  EXPECT_EQ(arena.pop_max(1, by_key), 1u);  // first of the two maxima
  EXPECT_EQ(arena.pop_max(1, by_key), 2u);
  EXPECT_EQ(arena.pop_max(1, by_key), 0u);
  EXPECT_EQ(arena.pop_max(1, by_key), 3u);
  EXPECT_TRUE(arena.empty(1));
  // Head/tail links survive arbitrary middle/end removals.
  arena.push_back(1, 5, work);
  arena.push_back(1, 6, work);
  EXPECT_EQ(arena.pop_max(1, [](std::uint32_t) { return 0; }), 5u);
  EXPECT_EQ(arena.pop_front(1), 6u);
  EXPECT_TRUE(arena.empty(1));
}

TEST(LinkFifoArena, ClearLinkEmptiesInConstantTime) {
  LinkFifoArena arena(4, 8);
  std::vector<std::uint64_t> work;
  for (std::uint32_t id = 0; id < 5; ++id) arena.push_back(2, id, work);
  arena.clear_link(2);
  EXPECT_TRUE(arena.empty(2));
  EXPECT_EQ(arena.depth(2), 0u);
  // The stale worklist entry is the caller's to compact; refilling must
  // re-link a clean queue.
  arena.push_back(2, 7, work);
  EXPECT_EQ(arena.depth(2), 1u);
  EXPECT_EQ(arena.pop_front(2), 7u);
}

TEST(LinkBitmap, SetTestClear) {
  LinkBitmap bits(130);
  EXPECT_FALSE(bits.test(0));
  EXPECT_FALSE(bits.test(129));
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_FALSE(bits.test(65));
  bits.clear(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_TRUE(bits.test(63));
}

/// A valid hypercube walk of `hops` edges that just zig-zags across
/// dimensions 0 and 1 — long routes without long geodesics.
HostPath zigzag_walk(Node start, int hops) {
  HostPath p{start};
  for (int h = 0; h < hops; ++h) {
    p.push_back(p.back() ^ (h % 2 == 0 ? 1u : 2u));
  }
  return p;
}

TEST(ActiveSetRegression, StepCostIgnoresHistoricallyActiveLinks) {
  // Phase A: a one-step burst that touches `burst` distinct links.  Phase
  // B: a single packet walking a long route through an otherwise idle
  // network.  The worklist accounting must come out at burst + ~1 visit per
  // tail step; the replaced map layout re-scanned all `burst` historical
  // queues every tail step (burst * walk_hops total).
  const int dims = 11;
  const Hypercube q(dims);
  const int burst = 2000;
  const int walk_hops = 400;

  std::vector<Packet> packets;
  for (int i = 0; i < burst; ++i) {
    // Distinct source nodes, one-hop routes: `burst` distinct links, all
    // busy exactly at step 0.
    const Node s = static_cast<Node>(i);
    packets.push_back({{s, q.neighbor(s, 0)}, 0, 0});
  }
  Packet walker;
  walker.route = zigzag_walk(0, walk_hops);
  walker.release = 2;  // enters after the burst has fully drained
  packets.push_back(walker);

  const auto r = StoreForwardSim(dims).run(packets);
  EXPECT_EQ(r.makespan, 2 + walk_hops);
  // Without faults there are no stale entries, so link_visits is exactly
  // sigma_steps(live links): burst links at step 0, the walker's current
  // link afterwards (plus one overlap-free slack bound).
  EXPECT_EQ(r.link_visits,
            static_cast<std::uint64_t>(burst) +
                static_cast<std::uint64_t>(walk_hops));
  // The historical-scaling failure mode would be ~burst * walk_hops.
  EXPECT_LT(r.link_visits,
            static_cast<std::uint64_t>(burst) * walk_hops / 100);
}

TEST(ActiveSetRegression, DroppedQueuesLeaveNoLingeringCost) {
  // Packets pile onto one link, a fault kills it, and a lone walker then
  // runs long past the drop.  The dead link's queue is emptied once; the
  // tail steps must cost one visit each, not re-visit the corpse.
  const int dims = 10;
  const Hypercube q(dims);
  const int pile = 500;
  const int walk_hops = 300;

  std::vector<Packet> packets;
  for (int i = 0; i < pile; ++i) {
    // All share the first hop 0 -> 1 (dimension 0), queueing on one link.
    packets.push_back({{0, q.neighbor(0, 0), q.neighbor(q.neighbor(0, 0), 1)},
                       0, 0});
  }
  Packet walker;
  walker.route = zigzag_walk(static_cast<Node>(q.num_nodes() - 4), walk_hops);
  walker.release = 3;
  packets.push_back(walker);

  FaultSchedule sched(dims);
  sched.link_down(2, 0, q.neighbor(0, 0));

  const auto r = StoreForwardSim(dims).run_with_faults(packets, sched);
  EXPECT_EQ(r.lost, static_cast<std::size_t>(pile) - 2);  // 2 escaped first
  // Visits: the pile link for steps 0..2 (the step-2 entry is the stale
  // one the drop pass emptied), the two escaped packets' second hops, and
  // the walker's tail — far below pile * walk_hops.
  EXPECT_LT(r.sim.link_visits, static_cast<std::uint64_t>(pile));
  EXPECT_EQ(r.sim.makespan, 3 + walk_hops);
}

}  // namespace
}  // namespace hyperpath
