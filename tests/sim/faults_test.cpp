#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include "base/error.hpp"
#include "core/cycle_multipath.hpp"
#include "embed/classical.hpp"
#include "sim/ida.hpp"

namespace hyperpath {
namespace {

TEST(FaultSet, KillIsBidirectional) {
  FaultSet f(3);
  f.kill_link(0b000, 0b001);
  EXPECT_TRUE(f.link_dead(0b000, 0b001));
  EXPECT_TRUE(f.link_dead(0b001, 0b000));
  EXPECT_FALSE(f.link_dead(0b000, 0b010));
  EXPECT_EQ(f.num_dead_directed(), 2u);
}

TEST(FaultSet, RandomKillsRequestedCount) {
  Rng rng(11);
  const auto f = FaultSet::random(4, 7, rng);
  EXPECT_EQ(f.num_dead_directed(), 14u);
}

TEST(FaultSet, PathAliveness) {
  FaultSet f(3);
  f.kill_link(0b001, 0b011);
  EXPECT_TRUE(f.path_alive({0b000, 0b010, 0b011}));
  EXPECT_FALSE(f.path_alive({0b000, 0b001, 0b011}));
  EXPECT_TRUE(f.path_alive({0b101}));  // trivial path
}

TEST(FaultSet, RejectsNonLink) {
  FaultSet f(3);
  EXPECT_THROW(f.kill_link(0b000, 0b011), Error);
}

TEST(Bundle, DeliveryCountsSurvivingPaths) {
  FaultSet f(3);
  f.kill_link(0b000, 0b001);
  const std::vector<HostPath> bundle{{0b000, 0b001, 0b011},
                                     {0b000, 0b010, 0b011}};
  const auto d = deliver_over_bundle(f, bundle);
  EXPECT_EQ(d.paths_total, 2);
  EXPECT_EQ(d.paths_alive, 1);
}

TEST(Bundle, PhaseDeliveryOverEmbedding) {
  const auto emb = gray_code_cycle_embedding(4);
  FaultSet f(4);
  // Kill the first cycle link (between images of guest nodes 0 and 1).
  f.kill_link(emb.host_of(0), emb.host_of(1));
  const auto per_edge = deliver_phase(f, emb);
  int dead_edges = 0;
  for (const auto& d : per_edge) dead_edges += (d.paths_alive == 0);
  // Width-1: exactly the two guest edges (one per direction... the guest is
  // a one-directional cycle, so exactly one edge dies).
  EXPECT_EQ(dead_edges, 1);
}

TEST(DegradedPhase, NoFaultsDeliversEverything) {
  const auto emb = gray_code_cycle_embedding(4);
  FaultSet none(4);
  const auto r = run_phase_with_faults(none, emb, 2);
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.delivered, emb.guest().num_edges() * 2);
  EXPECT_EQ(r.sim.makespan, 2);
}

TEST(DegradedPhase, DropsExactlyDeadPathPackets) {
  const auto emb = gray_code_cycle_embedding(4);
  FaultSet f(4);
  f.kill_link(emb.host_of(0), emb.host_of(1));
  const auto r = run_phase_with_faults(f, emb, 3);
  // Width-1: the one guest edge whose single path crosses the dead link
  // loses all 3 packets (the reverse direction is not a guest edge).
  EXPECT_EQ(r.dropped, 3u);
  EXPECT_EQ(r.delivered, (emb.guest().num_edges() - 1) * 3);
}

TEST(DegradedPhase, MultipathKeepsLatencyUnderFaults) {
  // Theorem 1 under faults: the surviving paths still deliver most traffic
  // at near-nominal cost.
  const auto emb = theorem1_cycle_embedding(8);
  Rng rng(15);
  const auto f = FaultSet::random(8, 16, rng);
  const auto r = run_phase_with_faults(f, emb, 4);
  EXPECT_EQ(r.delivered + r.dropped, emb.guest().num_edges() * 4);
  EXPECT_GT(r.delivered, r.dropped * 10);  // overwhelmingly delivered
  EXPECT_LE(r.sim.makespan, 4);            // no worse than nominal
}

TEST(Integration, IdaOverFaultyBundleRecovers) {
  // Width-4 synthetic bundle between 0000 and 1111; 1 fault; IDA with
  // threshold 3 over 4 fragments survives.
  const std::vector<HostPath> bundle{
      {0b0000, 0b0001, 0b0011, 0b0111, 0b1111},
      {0b0000, 0b0010, 0b0110, 0b1110, 0b1111},
      {0b0000, 0b0100, 0b1100, 0b1101, 0b1111},
      {0b0000, 0b1000, 0b1001, 0b1011, 0b1111},
  };
  FaultSet f(4);
  f.kill_link(0b0010, 0b0110);

  std::vector<std::uint8_t> message(256);
  for (std::size_t i = 0; i < message.size(); ++i) {
    message[i] = static_cast<std::uint8_t>(i * 37 + 5);
  }
  const auto frags = ida_encode(message, 4, 3);
  std::vector<IdaFragment> received;
  for (int i = 0; i < 4; ++i) {
    if (f.path_alive(bundle[i])) received.push_back(frags[i]);
  }
  EXPECT_EQ(received.size(), 3u);
  const auto decoded = ida_decode(received, 3, message.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
}

}  // namespace
}  // namespace hyperpath
