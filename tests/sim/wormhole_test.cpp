#include "sim/wormhole.hpp"

#include <gtest/gtest.h>

#include "base/error.hpp"

namespace hyperpath {
namespace {

TEST(Wormhole, UnblockedWormTakesLPlusMMinus1) {
  WormholeSim sim(4);
  Worm w;
  w.route = {0b0000, 0b0001, 0b0011, 0b0111};  // L = 3
  w.flits = 5;
  const auto r = sim.run({w});
  EXPECT_EQ(r.makespan, 3 + 5 - 1);
  EXPECT_EQ(r.completion[0], 7);
  EXPECT_EQ(r.total_flit_hops, 5u * 3u);
}

TEST(Wormhole, SingleFlitIsJustTheHeader) {
  WormholeSim sim(3);
  Worm w;
  w.route = {0b000, 0b001};
  const auto r = sim.run({w});
  EXPECT_EQ(r.makespan, 1);
}

TEST(Wormhole, TrivialRouteCompletesImmediately) {
  WormholeSim sim(3);
  Worm w;
  w.route = {0b101};
  w.flits = 100;
  const auto r = sim.run({w});
  EXPECT_EQ(r.makespan, 0);
  EXPECT_EQ(r.completion[0], 0);
}

TEST(Wormhole, SharedLinkSerializesWholeMessages) {
  // Two M-flit worms over the same single link: the second waits for the
  // first to fully drain — the Θ(M) queueing penalty wormhole inherits when
  // paths collide (and which disjoint-path routing removes).
  WormholeSim sim(3);
  Worm a, b;
  a.route = b.route = {0b000, 0b001};
  a.flits = b.flits = 10;
  const auto r = sim.run({a, b});
  EXPECT_EQ(r.completion[0], 10);
  EXPECT_EQ(r.completion[1], 20);
  EXPECT_EQ(r.makespan, 20);
}

TEST(Wormhole, DisjointPathsStreamConcurrently) {
  WormholeSim sim(3);
  Worm a, b;
  a.route = {0b000, 0b001, 0b011};
  b.route = {0b000, 0b010, 0b110};
  a.flits = b.flits = 8;
  const auto r = sim.run({a, b});
  EXPECT_EQ(r.makespan, 2 + 8 - 1);
}

TEST(Wormhole, BlockedHeaderStallsThenProceeds) {
  WormholeSim sim(3);
  Worm a, b;
  a.route = {0b000, 0b001};      // holds link 000→001 for 4 steps
  a.flits = 4;
  b.route = {0b100, 0b000, 0b001, 0b011};  // needs that link second
  b.flits = 1;
  const auto r = sim.run({a, b});
  // a: done at step 4 (1 link, 4 flits).  b holds nothing while blocked
  // (atomic acquisition), grabs its whole 3-link route at step 5, and
  // completes at 5 + 3 + 1 − 2 = 7.
  EXPECT_EQ(r.completion[0], 4);
  EXPECT_EQ(r.completion[1], 7);
}

TEST(Wormhole, ReleaseTimeRespected) {
  WormholeSim sim(2);
  Worm w;
  w.route = {0b00, 0b01};
  w.flits = 1;
  w.release = 3;
  const auto r = sim.run({w});
  EXPECT_EQ(r.completion[0], 4);  // first movable step is 4
}

TEST(Wormhole, RejectsBadInput) {
  WormholeSim sim(2);
  Worm w;
  w.route = {0b00, 0b11};
  EXPECT_THROW(sim.run({w}), Error);
  w.route = {0b00, 0b01};
  w.flits = 0;
  EXPECT_THROW(sim.run({w}), Error);
}

}  // namespace
}  // namespace hyperpath
