#include "sim/workloads.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "base/bits.hpp"
#include "base/error.hpp"

namespace hyperpath {
namespace {

void expect_permutation(const Pattern& p) {
  Pattern s = p;
  std::sort(s.begin(), s.end());
  for (Node i = 0; i < s.size(); ++i) ASSERT_EQ(s[i], i);
}

TEST(Workloads, RandomPatternIsPermutation) {
  Rng rng(5);
  expect_permutation(random_permutation_pattern(6, rng));
}

TEST(Workloads, BitReversal) {
  const auto p = bit_reversal_pattern(4);
  expect_permutation(p);
  EXPECT_EQ(p[0b0001], 0b1000u);
  EXPECT_EQ(p[0b1010], 0b0101u);
  EXPECT_EQ(p[0b1111], 0b1111u);
  // Involution.
  for (Node v = 0; v < 16; ++v) EXPECT_EQ(p[p[v]], v);
}

TEST(Workloads, Transpose) {
  const auto p = transpose_pattern(6);
  expect_permutation(p);
  EXPECT_EQ(p[0b000111], 0b111000u);
  for (Node v = 0; v < 64; ++v) EXPECT_EQ(p[p[v]], v);
  EXPECT_THROW(transpose_pattern(5), Error);
}

TEST(Workloads, Complement) {
  const auto p = complement_pattern(5);
  expect_permutation(p);
  EXPECT_EQ(p[0], 31u);
  for (Node v = 0; v < 32; ++v) EXPECT_EQ(p[p[v]], v);
}

TEST(Workloads, EcubeRouteCorrectsBitsInOrder) {
  const Hypercube q(5);
  const auto path = ecube_route(q, 0b00101, 0b11000);
  // Differing bits: 0, 2, 3, 4 → route length 4, dimensions ascending.
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), 0b00101u);
  EXPECT_EQ(path.back(), 0b11000u);
  EXPECT_TRUE(is_valid_path(q, path));
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    for (std::size_t j = i + 1; j + 1 < path.size(); ++j) {
      EXPECT_LT(q.edge_dim(path[i], path[i + 1]),
                q.edge_dim(path[j], path[j + 1]));
    }
  }
}

TEST(Workloads, EcubeTrivialRoute) {
  const Hypercube q(4);
  const auto path = ecube_route(q, 9, 9);
  EXPECT_EQ(path, (HostPath{9}));
}

TEST(Workloads, ValiantRouteValidAndBounded) {
  const Hypercube q(6);
  Rng rng(44);
  for (int trial = 0; trial < 100; ++trial) {
    const Node s = static_cast<Node>(rng.below(q.num_nodes()));
    const Node d = static_cast<Node>(rng.below(q.num_nodes()));
    const auto path = valiant_route(q, s, d, rng);
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), d);
    EXPECT_TRUE(is_valid_path(q, path));
    EXPECT_LE(path.size(), 2u * q.dims() + 1);  // two e-cube phases
  }
}

TEST(Workloads, ValiantSpreadsAdversarialTraffic) {
  // On the complement permutation, e-cube funnels every route through the
  // same dimension order; Valiant's random intermediates spread the load —
  // here: the maximum per-link congestion drops.
  const int dims = 7;
  const Hypercube q(dims);
  const auto pattern = complement_pattern(dims);
  std::vector<std::uint32_t> ecube_cong(q.num_directed_edges(), 0);
  std::vector<std::uint32_t> valiant_cong(q.num_directed_edges(), 0);
  Rng rng(9);
  auto count = [&](const HostPath& p, std::vector<std::uint32_t>& cong) {
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      ++cong[q.edge_id(p[i], p[i + 1])];
    }
  };
  for (Node v = 0; v < q.num_nodes(); ++v) {
    count(ecube_route(q, v, pattern[v]), ecube_cong);
    count(valiant_route(q, v, pattern[v], rng), valiant_cong);
  }
  const auto mx = [](const std::vector<std::uint32_t>& c) {
    return *std::max_element(c.begin(), c.end());
  };
  // e-cube on the complement is perfectly balanced (it is a dimension-wise
  // shift), so just require Valiant not to be catastrophically worse and
  // check a genuinely bad pattern too: transpose.
  EXPECT_LE(mx(valiant_cong), 4 * mx(ecube_cong) + 8);

  // Transpose is the classic e-cube killer: Θ(√N) congestion on the
  // middle dimensions, which Valiant's random intermediates dissolve.
  const int tdims = 8;
  const Hypercube qt(tdims);
  std::vector<std::uint32_t> e2(qt.num_directed_edges(), 0);
  std::vector<std::uint32_t> v2(qt.num_directed_edges(), 0);
  auto count2 = [&](const HostPath& p, std::vector<std::uint32_t>& cong) {
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      ++cong[qt.edge_id(p[i], p[i + 1])];
    }
  };
  const auto tr = transpose_pattern(tdims);
  for (Node v = 0; v < qt.num_nodes(); ++v) {
    count2(ecube_route(qt, v, tr[v]), e2);
    count2(valiant_route(qt, v, tr[v], rng), v2);
  }
  EXPECT_GE(mx(e2), 8u);  // the Θ(√N) hotspot is real
  EXPECT_LT(mx(v2), mx(e2));
}

}  // namespace
}  // namespace hyperpath
