#include "sim/parallel_sim.hpp"

#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "core/cycle_multipath.hpp"
#include "sim/phase.hpp"
#include "sim/workloads.hpp"

namespace hyperpath {
namespace {

std::vector<Packet> random_workload(int dims, int count, std::uint64_t seed) {
  Rng rng(seed);
  const Hypercube q(dims);
  std::vector<Packet> out;
  for (int i = 0; i < count; ++i) {
    Packet p;
    const Node s = static_cast<Node>(rng.below(q.num_nodes()));
    const Node d = static_cast<Node>(rng.below(q.num_nodes()));
    p.route = ecube_route(q, s, d);
    p.release = static_cast<int>(rng.below(3));
    out.push_back(std::move(p));
  }
  return out;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_transmissions, b.total_transmissions);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.max_queue, b.max_queue);
  EXPECT_EQ(a.dim_transmissions, b.dim_transmissions);
  EXPECT_EQ(a.latency, b.latency);
}

class ParallelSim : public ::testing::TestWithParam<int> {};

TEST_P(ParallelSim, MatchesSerialOnRandomWorkloads) {
  const int threads = GetParam();
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const int dims = 6;
    const auto packets = random_workload(dims, 500, seed);
    const auto serial = StoreForwardSim(dims).run(packets);
    const auto par = ParallelStoreForwardSim(dims, threads).run(packets);
    expect_identical(serial, par);
  }
}

TEST_P(ParallelSim, MatchesSerialOnTheorem1Phase) {
  const int threads = GetParam();
  const int n = 8;
  const auto emb = theorem1_cycle_embedding(n);
  const auto packets = phase_packets(emb, 2 * n);
  const auto serial = StoreForwardSim(n).run(packets);
  const auto par = ParallelStoreForwardSim(n, threads).run(packets);
  expect_identical(serial, par);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelSim,
                         ::testing::Values(1, 2, 3, 8));

TEST(ParallelSimBasics, EmptyAndTrivial) {
  ParallelStoreForwardSim sim(4, 2);
  EXPECT_EQ(sim.run({}).makespan, 0);
  Packet p;
  p.route = {7};
  EXPECT_EQ(sim.run({p}).makespan, 0);
}

TEST(ParallelSimBasics, DefaultThreadCount) {
  // threads = 0 picks hardware concurrency; results must still match.
  const auto packets = random_workload(5, 200, 9);
  expect_identical(StoreForwardSim(5).run(packets),
                   ParallelStoreForwardSim(5, 0).run(packets));
}

}  // namespace
}  // namespace hyperpath
