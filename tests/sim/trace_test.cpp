// Tests for the observability layer: step-level tracing (src/obs/trace.hpp)
// wired into the simulators, and its determinism guarantees.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "base/rng.hpp"
#include "core/cycle_multipath.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "sim/faults.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/phase.hpp"
#include "sim/recovery.hpp"
#include "sim/store_forward.hpp"
#include "sim/workloads.hpp"
#include "sim/wormhole.hpp"

namespace hyperpath {
namespace {

using obs::RingBufferSink;
using obs::TraceEvent;
using obs::TraceEventKind;

std::vector<Packet> random_workload(int dims, int count, std::uint64_t seed) {
  Rng rng(seed);
  const Hypercube q(dims);
  std::vector<Packet> out;
  for (int i = 0; i < count; ++i) {
    Packet p;
    const Node s = static_cast<Node>(rng.below(q.num_nodes()));
    const Node d = static_cast<Node>(rng.below(q.num_nodes()));
    p.route = ecube_route(q, s, d);
    p.release = static_cast<int>(rng.below(3));
    out.push_back(std::move(p));
  }
  return out;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_transmissions, b.total_transmissions);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.max_queue, b.max_queue);
  EXPECT_EQ(a.dim_transmissions, b.dim_transmissions);
  EXPECT_EQ(a.latency, b.latency);
}

TEST(StepTrace, DisabledWhenSinkIsNull) {
  obs::StepTrace trace(nullptr);
  EXPECT_FALSE(trace.enabled());
  // Records are no-ops, end_step/finish are safe.
  trace.record(TraceEvent{0, TraceEventKind::kTransmit, 1, 2, 3});
  trace.end_step();
  trace.finish();
}

TEST(StepTrace, SortsEventsCanonicallyWithinAStep) {
  RingBufferSink sink;
  obs::StepTrace trace(&sink);
  EXPECT_TRUE(trace.enabled());
  trace.record(TraceEvent{0, TraceEventKind::kTransmit, 5, 9, 0});
  trace.record(TraceEvent{0, TraceEventKind::kRelease, 2,
                          TraceEvent::kNoLink, 0});
  trace.record(TraceEvent{0, TraceEventKind::kTransmit, 1, 3, 0});
  trace.end_step();
  trace.finish();
  ASSERT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(sink.events()[0].kind, TraceEventKind::kRelease);
  EXPECT_EQ(sink.events()[1].link, 3u);
  EXPECT_EQ(sink.events()[2].link, 9u);
}

TEST(RingBuffer, DropsBeyondCapacityAndCounts) {
  RingBufferSink sink(/*capacity=*/4);
  obs::StepTrace trace(&sink);
  for (int i = 0; i < 10; ++i) {
    trace.record(TraceEvent{i, TraceEventKind::kTransmit,
                            static_cast<std::uint32_t>(i), 0, 0});
    trace.end_step();
  }
  trace.finish();
  EXPECT_EQ(sink.events().size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  EXPECT_EQ(sink.total(), 10u);  // total counts everything seen
  EXPECT_EQ(sink.total(TraceEventKind::kTransmit), 10u);
}

TEST(TracedStoreForward, TransmitEventsMatchTotalTransmissions) {
  const int dims = 6;
  const auto packets = random_workload(dims, 300, 17);
  RingBufferSink sink;
  StoreForwardSim sim(dims);
  const auto r = sim.run(packets, Arbitration::kFifo, 1 << 22, &sink);
  EXPECT_EQ(sink.total(TraceEventKind::kTransmit), r.total_transmissions);
  // Trivial routes (source == destination) are delivered without entering
  // the network, so they produce no release/arrive events.
  std::uint64_t moving = 0;
  for (const auto& p : packets) {
    if (p.route.size() > 1) ++moving;
  }
  EXPECT_EQ(sink.total(TraceEventKind::kArrive), moving);
  EXPECT_EQ(sink.total(TraceEventKind::kRelease), moving);
  // Arrival latencies recorded in trace match the histogram count.
  EXPECT_EQ(r.latency.count(), moving);
}

TEST(TracedStoreForward, TracingDoesNotPerturbResults) {
  const int dims = 6;
  const auto packets = random_workload(dims, 300, 23);
  StoreForwardSim sim(dims);
  const auto plain = sim.run(packets);
  RingBufferSink sink;
  const auto traced = sim.run(packets, Arbitration::kFifo, 1 << 22, &sink);
  expect_identical(plain, traced);
  EXPECT_GT(sink.total(), 0u);
}

TEST(TracedParallelSim, BitIdenticalToSerialWithTracing) {
  const int n = 8;
  const auto emb = theorem1_cycle_embedding(n);
  const auto packets = phase_packets(emb, 2 * n);

  RingBufferSink serial_sink;
  const auto serial =
      StoreForwardSim(n).run(packets, Arbitration::kFifo, 1 << 22,
                             &serial_sink);
  for (int threads : {2, 3, 8}) {
    RingBufferSink par_sink;
    const auto par = ParallelStoreForwardSim(n, threads).run(
        packets, 1 << 22, &par_sink);
    expect_identical(serial, par);
    // The canonical per-step sort makes the streams equal as sequences,
    // which subsumes multiset equality.
    ASSERT_EQ(serial_sink.events().size(), par_sink.events().size());
    EXPECT_TRUE(serial_sink.events() == par_sink.events());
  }
}

TEST(TracedParallelSim, RandomWorkloadTracesMatchSerial) {
  const int dims = 6;
  for (std::uint64_t seed : {4ull, 5ull}) {
    const auto packets = random_workload(dims, 400, seed);
    RingBufferSink a, b;
    const auto serial =
        StoreForwardSim(dims).run(packets, Arbitration::kFifo, 1 << 22, &a);
    const auto par =
        ParallelStoreForwardSim(dims, 4).run(packets, 1 << 22, &b);
    expect_identical(serial, par);
    EXPECT_TRUE(a.events() == b.events());
  }
}

TEST(TracedWormhole, EmitsStartDoneAndTransmits) {
  const int dims = 4;
  const Hypercube q(dims);
  std::vector<Worm> worms;
  for (Node s = 0; s < 8; ++s) {
    Worm w;
    w.route = ecube_route(q, s, static_cast<Node>(q.num_nodes() - 1 - s));
    w.flits = 4;
    worms.push_back(std::move(w));
  }
  RingBufferSink sink;
  WormholeSim sim(dims);
  const auto r = sim.run(worms, 1 << 22, &sink);
  EXPECT_GT(r.makespan, 0);
  EXPECT_EQ(sink.total(TraceEventKind::kWormStart),
            static_cast<std::uint64_t>(worms.size()));
  EXPECT_EQ(sink.total(TraceEventKind::kWormDone),
            static_cast<std::uint64_t>(worms.size()));
  EXPECT_GT(sink.total(TraceEventKind::kTransmit), 0u);
}

TEST(JsonlSink, WritesOneParseableLinePerEvent) {
  const int dims = 5;
  const auto packets = random_workload(dims, 100, 31);
  const std::string path = ::testing::TempDir() + "trace_test.jsonl";
  std::uint64_t expected_tx = 0;
  std::uint64_t written = 0;
  {
    obs::JsonlFileSink sink(path);
    StoreForwardSim sim(dims);
    const auto r = sim.run(packets, Arbitration::kFifo, 1 << 22, &sink);
    expected_tx = r.total_transmissions;
    written = sink.total();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::uint64_t lines = 0, transmits = 0;
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"step\":"), std::string::npos);
    if (line.find("\"kind\":\"transmit\"") != std::string::npos) ++transmits;
    ++lines;
  }
  EXPECT_EQ(lines, written);
  EXPECT_EQ(transmits, expected_tx);
  std::remove(path.c_str());
}

TEST(FaultTraceInterleaving, FaultRepairAndDropShareAStep) {
  // One packet 0 -> 1 -> 3 on Q_3.  A transient fault elsewhere is
  // repaired at step 1, the same step a new fault cuts the packet's next
  // link: the step carries kDrop, kFault, and kRepair together, in
  // canonical kind order.
  const int dims = 3;
  const Hypercube q(dims);
  std::vector<Packet> ps(1);
  ps[0].route = ecube_route(q, 0, 3);
  FaultSchedule schedule(dims);
  schedule.link_down(1, 1, 3);
  schedule.transient_link(0, 1, 4, q.neighbor(4, 0));
  RingBufferSink sink;
  const auto fr = StoreForwardSim(dims).run_with_faults(
      ps, schedule, Arbitration::kFifo, 1 << 22, &sink);
  EXPECT_EQ(fr.delivered, 0u);
  EXPECT_EQ(fr.lost, 1u);

  std::vector<TraceEventKind> step1;
  for (const auto& e : sink.events()) {
    if (e.step == 1) step1.push_back(e.kind);
  }
  const auto count = [&](TraceEventKind k) {
    std::size_t c = 0;
    for (auto kk : step1) c += kk == k;
    return c;
  };
  EXPECT_EQ(count(TraceEventKind::kDrop), 1u);
  EXPECT_EQ(count(TraceEventKind::kFault), 2u);   // both directions
  EXPECT_EQ(count(TraceEventKind::kRepair), 2u);
  EXPECT_TRUE(std::is_sorted(step1.begin(), step1.end()));

  // The flight recorder digests the interleaved step without complaint and
  // reproduces the fault-run outcome.
  obs::FlightRecorder rec;
  rec.on_events(sink.events());
  EXPECT_EQ(rec.inconsistencies(), 0u) << rec.first_inconsistency();
  EXPECT_EQ(rec.dropped(), fr.lost);
  EXPECT_EQ(rec.delivered(), fr.delivered);
  EXPECT_EQ(rec.makespan(), fr.sim.makespan);
  ASSERT_EQ(rec.fault_events().size(), 6u);  // down@0 x2, down@1 x2, up@1 x2
}

TEST(FaultTraceInterleaving, RecoveryStreamMixesDropsFaultsAndRetransmits) {
  // Faults inside the phase's active window truncate in-flight fragments
  // at the very steps the faults fire; the recovery waves then re-release
  // them (kRetransmit) into the same absolute clock.  The combined stream
  // must stay digestible: one recorder, zero inconsistencies, counts that
  // match the recovery engine's own accounting.
  const int n = 6;
  const auto emb = theorem1_cycle_embedding(n);
  const Hypercube q(n);
  FaultSchedule schedule(n);
  schedule.link_down(1, 1, q.neighbor(1, 0));
  schedule.link_down(1, 9, q.neighbor(9, 3));
  schedule.link_down(2, 20, q.neighbor(20, 1));
  RecoveryConfig cfg;
  cfg.timeout = 4;
  cfg.max_retries = 4;
  cfg.threshold = 0;  // all fragments required: every loss retransmits
  RingBufferSink sink;
  const auto r = run_recovery(emb, schedule, cfg, &sink);
  ASSERT_GT(r.retransmissions, 0u);
  ASSERT_GT(r.fragments_lost, 0u);

  std::set<int> fault_steps, drop_steps, retransmit_steps;
  for (const auto& e : sink.events()) {
    if (e.kind == TraceEventKind::kFault) fault_steps.insert(e.step);
    if (e.kind == TraceEventKind::kDrop) drop_steps.insert(e.step);
    if (e.kind == TraceEventKind::kRetransmit) {
      retransmit_steps.insert(e.step);
    }
  }
  // The faults fired inside the phase's active window, so at least one
  // fault step truncated traffic *that same step* — kFault and kDrop
  // interleave within one step of the stream.
  bool overlap = false;
  for (int s : fault_steps) overlap |= drop_steps.count(s) > 0;
  EXPECT_TRUE(overlap);
  EXPECT_FALSE(retransmit_steps.empty());

  obs::FlightRecorder rec;
  rec.on_events(sink.events());
  EXPECT_EQ(rec.inconsistencies(), 0u) << rec.first_inconsistency();
  EXPECT_EQ(rec.dropped(), r.fragments_lost);
  EXPECT_EQ(rec.delivered(), r.fragments_delivered);
  EXPECT_EQ(rec.retransmits().size(), r.retransmissions);
  EXPECT_EQ(rec.makespan(), r.makespan);
  EXPECT_GT(rec.max_generation(), 0u);  // waves reuse wave-local ids
}

TEST(Metrics, RegistryRoundTrip) {
  obs::MetricsRegistry reg;
  reg.counter("events").add(3);
  reg.counter("events").add(2);
  reg.gauge("depth").set(7);
  auto& h = reg.histogram("lat", {1, 2, 4});
  h.observe(1);
  h.observe(3);
  h.observe(100);
  {
    obs::ScopedTimer t("span", &reg);
  }
  EXPECT_EQ(reg.counter("events").value(), 5u);
  EXPECT_EQ(reg.gauge("depth").value(), 7);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), 100u);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"events\":5"), std::string::npos);
  EXPECT_NE(json.find("\"span\""), std::string::npos);
  reg.reset();
  EXPECT_EQ(reg.counter("events").value(), 0u);
}

TEST(Metrics, UtilizationProfileDownsamplesButKeepsExactMean) {
  obs::UtilizationProfile p;
  double sum = 0;
  const int steps = 5000;  // forces several slot-merge doublings past 512
  for (int i = 0; i < steps; ++i) {
    const double v = (i % 7) / 7.0;
    p.add(v);
    sum += v;
  }
  EXPECT_EQ(p.steps(), static_cast<std::uint64_t>(steps));
  EXPECT_NEAR(p.average(), sum / steps, 1e-12);
  EXPECT_LE(p.profile().size(), 512u);
  EXPECT_GT(p.granularity(), 1u);
}

}  // namespace
}  // namespace hyperpath
