#include "sim/store_forward.hpp"

#include <gtest/gtest.h>

#include "base/error.hpp"

namespace hyperpath {
namespace {

TEST(StoreForward, EmptyAndTrivial) {
  StoreForwardSim sim(3);
  EXPECT_EQ(sim.run({}).makespan, 0);
  // A packet already at its destination takes no steps.
  Packet p;
  p.route = {5};
  EXPECT_EQ(sim.run({p}).makespan, 0);
}

TEST(StoreForward, SinglePacketTakesPathLengthSteps) {
  StoreForwardSim sim(4);
  Packet p;
  p.route = {0b0000, 0b0001, 0b0011, 0b0111};
  const auto r = sim.run({p});
  EXPECT_EQ(r.makespan, 3);
  EXPECT_EQ(r.total_transmissions, 3u);
}

TEST(StoreForward, ContentionSerializesSharedLink) {
  StoreForwardSim sim(3);
  // Three packets over the same first link 000→001.
  std::vector<Packet> ps(3);
  for (auto& p : ps) p.route = {0b000, 0b001};
  const auto r = sim.run(ps);
  EXPECT_EQ(r.makespan, 3);
  EXPECT_EQ(r.max_queue, 3u);
}

TEST(StoreForward, DisjointPathsRunConcurrently) {
  StoreForwardSim sim(3);
  std::vector<Packet> ps(3);
  ps[0].route = {0b000, 0b001, 0b011};
  ps[1].route = {0b000, 0b010, 0b011};
  ps[2].route = {0b000, 0b100, 0b101};
  const auto r = sim.run(ps);
  EXPECT_EQ(r.makespan, 2);
}

TEST(StoreForward, ReleaseDelaysPacket) {
  StoreForwardSim sim(2);
  Packet p;
  p.route = {0b00, 0b01};
  p.release = 5;
  const auto r = sim.run({p});
  EXPECT_EQ(r.makespan, 6);  // waits steps 0–4, moves during step 5
}

TEST(StoreForward, PipeliningAlongAPath) {
  // m packets along a single L-hop path complete in L + m − 1 steps.
  StoreForwardSim sim(4);
  const HostPath route{0b0000, 0b0001, 0b0011, 0b0111, 0b1111};
  std::vector<Packet> ps(6);
  for (auto& p : ps) p.route = route;
  const auto r = sim.run(ps);
  EXPECT_EQ(r.makespan, 4 + 6 - 1);
}

TEST(StoreForward, FarthestFirstBeatsFifoOnMixedTraffic) {
  // One long packet and several short ones sharing the first link: FIFO can
  // strand the long packet behind shorts; farthest-first sends it ahead.
  StoreForwardSim sim(4);
  std::vector<Packet> ps;
  Packet longp;
  longp.route = {0b0000, 0b0001, 0b0011, 0b0111, 0b1111};
  for (int i = 0; i < 3; ++i) {
    Packet s;
    s.route = {0b0000, 0b0001};
    ps.push_back(s);
  }
  ps.push_back(longp);
  const auto fifo = sim.run(ps, Arbitration::kFifo);
  const auto ff = sim.run(ps, Arbitration::kFarthestFirst);
  EXPECT_EQ(fifo.makespan, 3 + 4);  // long waits behind 3 shorts, then 4 hops
  EXPECT_EQ(ff.makespan, 4);        // long leads; shorts trail one per step
}

TEST(StoreForward, UtilizationAccounting) {
  StoreForwardSim sim(2);  // 8 directed links
  Packet p;
  p.route = {0b00, 0b01};
  const auto r = sim.run({p});
  ASSERT_EQ(r.utilization.steps(), 1u);
  EXPECT_DOUBLE_EQ(r.utilization.profile()[0], 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(r.average_utilization(), 1.0 / 8.0);
}

TEST(StoreForward, RejectsInvalidRoute) {
  StoreForwardSim sim(2);
  Packet p;
  p.route = {0b00, 0b11};
  EXPECT_THROW(sim.run({p}), Error);
}

TEST(StoreForward, DeterministicAcrossRuns) {
  StoreForwardSim sim(4);
  std::vector<Packet> ps;
  for (Node v = 0; v < 16; ++v) {
    Packet p;
    p.route = {v, v ^ 1u, v ^ 3u};
    ps.push_back(p);
  }
  const auto a = sim.run(ps);
  const auto b = sim.run(ps);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_transmissions, b.total_transmissions);
  EXPECT_EQ(a.utilization, b.utilization);
}

}  // namespace
}  // namespace hyperpath
