#include "sim/ida.hpp"

#include <gtest/gtest.h>

#include "base/error.hpp"
#include "base/rng.hpp"

namespace hyperpath {
namespace {

TEST(Gf256, FieldAxiomsSpotChecks) {
  using namespace gf256;
  EXPECT_EQ(add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(mul(0x57, 0x83), 0xC1);  // classic AES example
  EXPECT_EQ(mul(1, 0xAB), 0xAB);
  EXPECT_EQ(mul(0, 0xAB), 0);
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(mul(static_cast<std::uint8_t>(a), inv(static_cast<std::uint8_t>(a))), 1);
  }
}

TEST(Gf256, MulCommutesAndAssociatesSampled) {
  using namespace gf256;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.below(256));
    const auto b = static_cast<std::uint8_t>(rng.below(256));
    const auto c = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_EQ(mul(a, b), mul(b, a));
    EXPECT_EQ(mul(a, mul(b, c)), mul(mul(a, b), c));
    EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));  // distributivity
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  using namespace gf256;
  std::uint8_t acc = 1;
  for (unsigned e = 0; e < 10; ++e) {
    EXPECT_EQ(pow(0x35, e), acc);
    acc = mul(acc, 0x35);
  }
}

std::vector<std::uint8_t> test_message(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  return data;
}

TEST(Ida, RoundTripAllFragments) {
  const auto data = test_message(1000, 1);
  const auto frags = ida_encode(data, 8, 5);
  ASSERT_EQ(frags.size(), 8u);
  for (const auto& f : frags) EXPECT_EQ(f.payload.size(), 200u);
  const auto decoded = ida_decode(frags, 5, data.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(Ida, AnyThresholdSubsetRecovers) {
  const auto data = test_message(333, 2);
  const int n = 6, m = 3;
  const auto frags = ida_encode(data, n, m);
  // Every 3-subset of the 6 fragments must reconstruct.
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      for (int c = b + 1; c < n; ++c) {
        const std::vector<IdaFragment> subset{frags[a], frags[b], frags[c]};
        const auto decoded = ida_decode(subset, m, data.size());
        ASSERT_TRUE(decoded.has_value()) << a << b << c;
        EXPECT_EQ(*decoded, data);
      }
    }
  }
}

TEST(Ida, BelowThresholdFails) {
  const auto data = test_message(100, 3);
  const auto frags = ida_encode(data, 5, 3);
  const std::vector<IdaFragment> two{frags[0], frags[4]};
  EXPECT_FALSE(ida_decode(two, 3, data.size()).has_value());
}

TEST(Ida, DuplicateIndicesDoNotCount) {
  const auto data = test_message(100, 4);
  const auto frags = ida_encode(data, 5, 3);
  const std::vector<IdaFragment> dup{frags[0], frags[0], frags[0]};
  EXPECT_FALSE(ida_decode(dup, 3, data.size()).has_value());
}

TEST(Ida, ThresholdOneIsReplication) {
  const auto data = test_message(64, 5);
  const auto frags = ida_encode(data, 4, 1);
  for (const auto& f : frags) {
    const auto decoded = ida_decode(std::vector<IdaFragment>{f}, 1, data.size());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
  }
}

TEST(Ida, SizeNotMultipleOfThreshold) {
  const auto data = test_message(101, 6);  // 101 = 3·33 + 2
  const auto frags = ida_encode(data, 7, 3);
  const std::vector<IdaFragment> subset{frags[6], frags[2], frags[4]};
  const auto decoded = ida_decode(subset, 3, data.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(Ida, RejectsBadParameters) {
  const auto data = test_message(10, 7);
  EXPECT_THROW(ida_encode(data, 0, 0), Error);
  EXPECT_THROW(ida_encode(data, 3, 4), Error);
  EXPECT_THROW(ida_encode(data, 256, 2), Error);
}

TEST(Ida, OverheadIsNOverM) {
  const auto data = test_message(600, 8);
  const auto frags = ida_encode(data, 10, 6);
  std::size_t total = 0;
  for (const auto& f : frags) total += f.payload.size();
  EXPECT_EQ(total, 1000u);  // 600 · 10/6
}

}  // namespace
}  // namespace hyperpath
