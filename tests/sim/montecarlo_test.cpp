// The Monte-Carlo campaign engine's determinism contract (sim/montecarlo.hpp):
// campaign statistics are a pure function of (embedding, config) — never of
// the pool's thread count, the reduction grain, or how the trial range is
// partitioned across runs.  Plus unit coverage for the randomized schedule
// generator and the failure-envelope interpolation.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "base/error.hpp"
#include "core/cycle_multipath.hpp"
#include "embed/classical.hpp"
#include "par/task_pool.hpp"
#include "sim/montecarlo.hpp"

namespace hyperpath {
namespace {

const int kThreadCounts[] = {1, 2, 8};

/// Small but non-trivial campaign: faults dense enough that most trials
/// exercise loss, retransmission and (for transients) repair.
CampaignConfig small_config() {
  CampaignConfig cfg;
  cfg.seed = 7;
  cfg.trials = 40;
  cfg.schedule.link_rate = 0.08;
  cfg.schedule.transient_fraction = 0.5;
  cfg.recovery.timeout = 4;
  cfg.recovery.max_retries = 4;
  cfg.grain = 5;
  cfg.live_metrics = false;
  return cfg;
}

void expect_same_stats(const CampaignStats& a, const CampaignStats& b,
                       const std::string& label) {
  EXPECT_EQ(a.digest, b.digest) << label;
  EXPECT_EQ(a.trials, b.trials) << label;
  EXPECT_EQ(a.schedule_events, b.schedule_events) << label;
  EXPECT_EQ(a.messages_total, b.messages_total) << label;
  EXPECT_EQ(a.messages_complete, b.messages_complete) << label;
  EXPECT_EQ(a.messages_recovered, b.messages_recovered) << label;
  EXPECT_EQ(a.retransmissions, b.retransmissions) << label;
  EXPECT_EQ(a.fragments_lost, b.fragments_lost) << label;
  EXPECT_EQ(a.fragments_exhausted, b.fragments_exhausted) << label;
  EXPECT_EQ(a.trials_fully_delivered, b.trials_fully_delivered) << label;
  EXPECT_EQ(a.max_makespan, b.max_makespan) << label;
  EXPECT_EQ(a.max_waves, b.max_waves) << label;
  EXPECT_EQ(a.recovery_latency, b.recovery_latency) << label;
  EXPECT_EQ(a.retransmit_generations, b.retransmit_generations) << label;
  EXPECT_EQ(a.trial_makespan, b.trial_makespan) << label;
  EXPECT_EQ(a.delivery_permille, b.delivery_permille) << label;
}

CampaignStats run_at(const MultiPathEmbedding& emb, const CampaignConfig& cfg,
                     int threads) {
  par::TaskPool pool(threads);
  par::PoolScope scope(pool);
  return MonteCarloDriver(emb).run(cfg);
}

TEST(MonteCarloCampaign, DigestBitIdenticalAcrossThreadCounts) {
  const auto emb = theorem1_cycle_embedding(6);
  CampaignConfig cfg = small_config();
  cfg.recovery.threshold = emb.width() - 1;
  const CampaignStats base = run_at(emb, cfg, 1);
  EXPECT_GT(base.retransmissions, 0u);  // the campaign must exercise recovery
  for (int threads : kThreadCounts) {
    expect_same_stats(base, run_at(emb, cfg, threads),
                      "threads=" + std::to_string(threads));
  }
}

TEST(MonteCarloCampaign, GrainDoesNotChangeTheDigest) {
  const auto emb = theorem1_cycle_embedding(6);
  CampaignConfig cfg = small_config();
  cfg.recovery.threshold = emb.width() - 1;
  const CampaignStats base = run_at(emb, cfg, 8);
  for (std::size_t grain : {std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
    CampaignConfig c = cfg;
    c.grain = grain;
    expect_same_stats(base, run_at(emb, c, 8),
                      "grain=" + std::to_string(grain));
  }
}

TEST(MonteCarloCampaign, PartitionedTrialRangeMergesToTheWholeCampaign) {
  const auto emb = theorem1_cycle_embedding(6);
  CampaignConfig cfg = small_config();
  cfg.recovery.threshold = emb.width() - 1;
  const CampaignStats whole = run_at(emb, cfg, 2);

  // Resume scenario: the first 17 trials ran earlier (on one pool), the
  // remaining 23 run later (on another); merging reproduces the campaign.
  CampaignConfig head = cfg, tail = cfg;
  head.trial_end = 17;
  tail.trial_begin = 17;
  CampaignStats merged = run_at(emb, head, 8);
  merged.merge(run_at(emb, tail, 1));
  expect_same_stats(whole, merged, "partitioned");
}

TEST(MonteCarloCampaign, FaultReplayOnlyModeIsDeterministicToo) {
  // max_retries = 0: pure fault replay, no recovery waves — the other
  // campaign mode CI pins across thread counts.
  const auto emb = theorem1_cycle_embedding(6);
  CampaignConfig cfg = small_config();
  cfg.recovery.threshold = emb.width() - 1;
  cfg.recovery.max_retries = 0;
  const CampaignStats base = run_at(emb, cfg, 1);
  EXPECT_EQ(base.retransmissions, 0u);
  for (int threads : kThreadCounts) {
    expect_same_stats(base, run_at(emb, cfg, threads),
                      "replay threads=" + std::to_string(threads));
  }
}

TEST(MonteCarloCampaign, FaultFreeCampaignDeliversEverything) {
  const auto emb = theorem1_cycle_embedding(6);
  CampaignConfig cfg = small_config();
  cfg.recovery.threshold = emb.width() - 1;
  cfg.schedule.link_rate = 0;
  cfg.schedule.node_rate = 0;
  const CampaignStats s = run_at(emb, cfg, 2);
  EXPECT_EQ(s.trials, cfg.trials);
  EXPECT_EQ(s.schedule_events, 0u);
  EXPECT_DOUBLE_EQ(s.delivery_rate(), 1.0);
  EXPECT_DOUBLE_EQ(s.survival_rate(), 1.0);
  EXPECT_EQ(s.retransmissions, 0u);
  EXPECT_EQ(s.fragments_lost, 0u);
  EXPECT_EQ(s.max_waves, 1);
}

TEST(MonteCarloCampaign, SeedSelectsADifferentCampaign) {
  const auto emb = theorem1_cycle_embedding(6);
  CampaignConfig cfg = small_config();
  cfg.recovery.threshold = emb.width() - 1;
  CampaignConfig other = cfg;
  other.seed = cfg.seed + 1;
  EXPECT_NE(run_at(emb, cfg, 2).digest, run_at(emb, other, 2).digest);
}

TEST(MonteCarloCampaign, RunTrialReproducesTheCampaignTrial) {
  const auto emb = theorem1_cycle_embedding(6);
  CampaignConfig cfg = small_config();
  cfg.recovery.threshold = emb.width() - 1;
  const MonteCarloDriver driver(emb);
  FaultSchedule s1(1), s2(1);
  const RecoveryResult r1 = driver.run_trial(cfg, 11, &s1);
  const RecoveryResult r2 = driver.run_trial(cfg, 11, &s2);
  EXPECT_EQ(s1.events(), s2.events());
  const TrialOutcome t1 =
      MonteCarloDriver::summarize(11, static_cast<std::uint32_t>(s1.size()), r1);
  const TrialOutcome t2 =
      MonteCarloDriver::summarize(11, static_cast<std::uint32_t>(s2.size()), r2);
  EXPECT_EQ(t1.digest(), t2.digest());
  EXPECT_EQ(r1.messages_total, emb.guest().num_edges());
}

TEST(MonteCarloCampaign, TrialSeedsAreDistinctAndSeedKeyed) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t t = 0; t < 4096; ++t) {
    seen.insert(trial_seed(1, t));
  }
  EXPECT_EQ(seen.size(), 4096u);
  EXPECT_NE(trial_seed(1, 0), trial_seed(2, 0));
}

TEST(MonteCarloCampaign, WiderBundlesDeliverAtLeastAsWellAsGray) {
  const auto multi = theorem1_cycle_embedding(6);
  const auto gray = gray_code_cycle_embedding(6);
  CampaignConfig cfg = small_config();
  cfg.trials = 24;
  cfg.schedule.link_rate = 0.12;
  cfg.recovery.threshold = multi.width() - 1;
  CampaignConfig gray_cfg = cfg;
  gray_cfg.recovery.threshold = 0;
  const double md = run_at(multi, cfg, 2).delivery_rate();
  const double gd = run_at(gray, gray_cfg, 2).delivery_rate();
  EXPECT_GE(md, gd);
}

TEST(MonteCarloCampaign, RejectsMalformedConfigs) {
  const auto emb = theorem1_cycle_embedding(6);
  const MonteCarloDriver driver(emb);
  CampaignConfig empty = small_config();
  empty.trial_begin = 10;
  empty.trial_end = 10;
  EXPECT_THROW(driver.run(empty), Error);
  CampaignConfig nested = small_config();
  nested.recovery.parallel = true;
  EXPECT_THROW(driver.run(nested), Error);
}

EnvelopePoint point(double rate, std::uint64_t total, std::uint64_t done) {
  EnvelopePoint p;
  p.link_rate = rate;
  p.stats.messages_total = total;
  p.stats.messages_complete = done;
  return p;
}

TEST(MonteCarloEnvelope, CriticalRateInterpolatesBetweenSweepPoints) {
  // delivery 1.00 at rate 0.1, 0.90 at rate 0.2: the 0.95 crossing sits
  // exactly halfway.
  const std::vector<EnvelopePoint> env = {point(0.1, 100, 100),
                                          point(0.2, 100, 90)};
  EXPECT_DOUBLE_EQ(critical_fault_rate(env, 0.95), 0.15);
  // Never drops below the threshold.
  EXPECT_DOUBLE_EQ(critical_fault_rate(env, 0.5), -1.0);
  // Already below at the first point.
  EXPECT_DOUBLE_EQ(critical_fault_rate(env, 1.5), 0.1);
}

TEST(MonteCarloEnvelope, SweepSharesSeedsAcrossIntensities) {
  const auto emb = theorem1_cycle_embedding(6);
  CampaignConfig cfg = small_config();
  cfg.trials = 12;
  cfg.recovery.threshold = emb.width() - 1;
  par::TaskPool pool(2);
  par::PoolScope scope(pool);
  const auto env = sweep_envelope(emb, cfg, {0.0, 0.1});
  ASSERT_EQ(env.size(), 2u);
  EXPECT_DOUBLE_EQ(env[0].stats.delivery_rate(), 1.0);  // fault-free point
  // The rate-0.1 point is the same campaign small_config would run directly.
  CampaignConfig direct = cfg;
  direct.schedule.link_rate = 0.1;
  expect_same_stats(env[1].stats, MonteCarloDriver(emb).run(direct), "sweep");
}

TEST(MonteCarloSchedule, RandomScheduleHonoursTheSpec) {
  const int dims = 6;
  const Hypercube q(dims);
  RandomScheduleSpec spec;
  spec.window = 5;
  spec.link_rate = 0.1;
  spec.node_rate = 0.05;
  spec.transient_fraction = 0.5;
  spec.min_repair = 2;
  spec.max_repair = 9;
  Rng rng(99);
  const FaultSchedule s = FaultSchedule::random(dims, spec, rng);
  EXPECT_EQ(s.dims(), dims);

  const auto expect_count = [](double rate, std::uint64_t total) {
    return static_cast<std::uint64_t>(rate * static_cast<double>(total) + 0.5);
  };
  std::uint64_t link_downs = 0, node_downs = 0;
  for (const FaultEvent& e : s.events()) {
    switch (e.kind) {
      case FaultEventKind::kLinkDown:
        ++link_downs;
        EXPECT_LT(e.step, spec.window);
        break;
      case FaultEventKind::kNodeDown:
        ++node_downs;
        EXPECT_LT(e.step, spec.window);
        break;
      case FaultEventKind::kLinkUp:
      case FaultEventKind::kNodeUp:
        // Repairs land after their fault, inside the repair-delay range.
        EXPECT_GE(e.step, spec.min_repair);
        EXPECT_LT(e.step, spec.window + spec.max_repair);
        break;
    }
    EXPECT_GE(e.step, 0);
  }
  EXPECT_EQ(link_downs, expect_count(spec.link_rate, q.num_undirected_edges()));
  EXPECT_EQ(node_downs, expect_count(spec.node_rate, q.num_nodes()));
}

TEST(MonteCarloSchedule, RateClampsToThePhysicalLinkCount) {
  RandomScheduleSpec spec;
  spec.link_rate = 9.0;  // far beyond every link
  spec.transient_fraction = 0;
  Rng rng(3);
  const FaultSchedule s = FaultSchedule::random(3, spec, rng);
  const Hypercube q(3);
  EXPECT_EQ(s.size(), q.num_undirected_edges());  // each link cut exactly once
}

TEST(MonteCarloSchedule, RejectsMalformedSpecs) {
  Rng rng(1);
  RandomScheduleSpec bad;
  bad.window = 0;
  EXPECT_THROW(FaultSchedule::random(4, bad, rng), Error);
  bad = {};
  bad.transient_fraction = 1.5;
  EXPECT_THROW(FaultSchedule::random(4, bad, rng), Error);
  bad = {};
  bad.min_repair = 0;
  EXPECT_THROW(FaultSchedule::random(4, bad, rng), Error);
  bad = {};
  bad.link_rate = -0.1;
  EXPECT_THROW(FaultSchedule::random(4, bad, rng), Error);
}

}  // namespace
}  // namespace hyperpath
