#include "sim/phase.hpp"

#include <gtest/gtest.h>

#include "base/bits.hpp"
#include "embed/classical.hpp"

namespace hyperpath {
namespace {

TEST(Phase, GrayCycleOnePacketCostIsOne) {
  const auto emb = gray_code_cycle_embedding(4);
  const auto r = measure_phase_cost(emb, 1);
  EXPECT_EQ(r.makespan, 1);
}

// Section 2: with the classical Gray-code cycle, m packets per node need
// ~m steps (each node's single outgoing cycle link serializes them; the
// paper's lower bound is m/2 via the dimension-0 counting argument).
TEST(Phase, GrayCycleMPacketCostIsM) {
  const auto emb = gray_code_cycle_embedding(5);
  for (int m : {2, 4, 8}) {
    const auto r = measure_phase_cost(emb, m);
    EXPECT_EQ(r.makespan, m);
  }
}

TEST(Phase, PacketsRoundRobinOverBundle) {
  // Width-2 embedding of the 2-cycle; 4 packets per edge → 2 per path →
  // pipelined cost 2 + (2 − 1) = 3 over the length-2 paths.
  DigraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  MultiPathEmbedding emb(std::move(b).build(), 2);
  emb.set_node_map({0b00, 0b11});
  emb.set_paths(emb.guest().find_edge(0, 1),
                {{0b00, 0b01, 0b11}, {0b00, 0b10, 0b11}});
  emb.set_paths(emb.guest().find_edge(1, 0),
                {{0b11, 0b01, 0b00}, {0b11, 0b10, 0b00}});
  const auto packets = phase_packets(emb, 4);
  EXPECT_EQ(packets.size(), 8u);
  const auto r = measure_phase_cost(emb, 4);
  EXPECT_EQ(r.makespan, 3);
}

TEST(Phase, ShortestPathGetsExtraPackets) {
  // Bundle with one direct path and one length-3 path; p = 3 should put
  // packets 0 and 2 on the direct path.
  DigraphBuilder b(2);
  b.add_edge(0, 1);
  MultiPathEmbedding emb(std::move(b).build(), 3);
  emb.set_node_map({0b000, 0b001});
  emb.set_paths(0, {{0b000, 0b010, 0b011, 0b001}, {0b000, 0b001}});
  const auto packets = phase_packets(emb, 3);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].route.size(), 2u);  // direct first
  EXPECT_EQ(packets[1].route.size(), 4u);
  EXPECT_EQ(packets[2].route.size(), 2u);
}

TEST(Phase, KCopyCyclesPhaseCostOne) {
  // Lemma 1: the copies are jointly congestion-1, so a 1-packet phase on
  // every copy simultaneously still finishes in one step.
  const auto emb = multicopy_directed_cycles(4);
  const auto r = measure_phase_cost(emb, 1);
  EXPECT_EQ(r.makespan, 1);
}

TEST(Phase, KCopyPipelinedPackets) {
  const auto emb = multicopy_directed_cycles(4);
  const auto r = measure_phase_cost(emb, 5);
  EXPECT_EQ(r.makespan, 5);  // each copy's links serialize its own packets
}

TEST(Phase, EvenCubeFullUtilization) {
  // For even n every directed link carries a packet in every step of a
  // 1-packet multicopy phase.
  const auto emb = multicopy_directed_cycles(6);
  const auto r = measure_phase_cost(emb, 1);
  ASSERT_EQ(r.utilization.steps(), 1u);
  EXPECT_DOUBLE_EQ(r.utilization.profile()[0], 1.0);
}

}  // namespace
}  // namespace hyperpath
