#include "embed/embedding.hpp"

#include <gtest/gtest.h>

#include <string>

#include "base/error.hpp"
#include "graph/builders.hpp"

namespace hyperpath {
namespace {

// A hand-built width-2 embedding of the directed 2-cycle 0↔1 into Q_2:
// η(0) = 00, η(1) = 11; each edge gets the two disjoint length-2 paths.
MultiPathEmbedding tiny_width2() {
  DigraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  MultiPathEmbedding emb(std::move(b).build(), 2);
  emb.set_node_map({0b00, 0b11});
  const std::size_t e01 = emb.guest().find_edge(0, 1);
  const std::size_t e10 = emb.guest().find_edge(1, 0);
  emb.set_paths(e01, {{0b00, 0b01, 0b11}, {0b00, 0b10, 0b11}});
  emb.set_paths(e10, {{0b11, 0b01, 0b00}, {0b11, 0b10, 0b00}});
  return emb;
}

TEST(MultiPathEmbedding, Metrics) {
  const auto emb = tiny_width2();
  EXPECT_EQ(emb.load(), 1);
  EXPECT_EQ(emb.dilation(), 2);
  EXPECT_EQ(emb.width(), 2);
  EXPECT_EQ(emb.congestion(), 1);
  EXPECT_EQ(emb.expansion(), 2.0);  // 4 host nodes / 2 guest nodes → next pow2 = 2
  EXPECT_NO_THROW(emb.verify_or_throw(2, 1));
}

TEST(MultiPathEmbedding, CongestionPerLinkCounts) {
  const auto emb = tiny_width2();
  const auto cong = emb.congestion_per_link();
  std::uint64_t used = 0;
  for (auto c : cong) used += c;
  EXPECT_EQ(used, 8u);  // 4 paths × 2 hops
}

TEST(MultiPathEmbedding, VerifyCatchesWrongEndpoint) {
  auto emb = tiny_width2();
  const std::size_t e01 = emb.guest().find_edge(0, 1);
  emb.set_paths(e01, {{0b00, 0b01}});  // ends at 01 ≠ η(1)
  EXPECT_THROW(emb.verify_or_throw(), Error);
}

TEST(MultiPathEmbedding, VerifyCatchesNonDisjointBundle) {
  auto emb = tiny_width2();
  const std::size_t e01 = emb.guest().find_edge(0, 1);
  emb.set_paths(e01, {{0b00, 0b01, 0b11}, {0b00, 0b01, 0b11}});
  EXPECT_THROW(emb.verify_or_throw(), Error);
}

TEST(MultiPathEmbedding, VerifyCatchesInvalidWalk) {
  auto emb = tiny_width2();
  const std::size_t e01 = emb.guest().find_edge(0, 1);
  emb.set_paths(e01, {{0b00, 0b11}});  // 2-bit hop
  EXPECT_THROW(emb.verify_or_throw(), Error);
}

TEST(MultiPathEmbedding, VerifyCatchesExcessLoad) {
  DigraphBuilder b(2);
  b.add_edge(0, 1);
  MultiPathEmbedding emb(std::move(b).build(), 2);
  emb.set_node_map({0b00, 0b00});  // two guests on one host, but guest fits
  EXPECT_THROW(emb.verify_or_throw(), Error);
}

TEST(MultiPathEmbedding, LoadTwoAllowedWhenRequested) {
  DigraphBuilder b(2);
  b.add_edge(0, 1);
  MultiPathEmbedding emb(std::move(b).build(), 2);
  emb.set_node_map({0b00, 0b00});
  // With expected_load = 2 the check passes structurally except that the
  // edge's path must loop from 00 to 00 — impossible as a simple edge walk,
  // so use a distinct pair instead.
  emb.set_node_map({0b00, 0b01});
  emb.set_paths(0, {{0b00, 0b01}});
  EXPECT_NO_THROW(emb.verify_or_throw(-1, 2));
}

TEST(MultiPathEmbedding, WidthIsMinimumBundleSize) {
  auto emb = tiny_width2();
  const std::size_t e10 = emb.guest().find_edge(1, 0);
  emb.set_paths(e10, {{0b11, 0b01, 0b00}});
  EXPECT_EQ(emb.width(), 1);
}

TEST(KCopyEmbedding, TwoCopiesCongestionSums) {
  // Guest: directed 4-cycle.  Two copies along the two orientations of the
  // same host cycle share links in opposite directions only, so congestion
  // stays 1; a duplicated copy forces congestion 2.
  const Digraph guest = directed_cycle(4);
  KCopyEmbedding emb(guest, 2);
  const std::vector<Node> eta{0b00, 0b01, 0b11, 0b10};
  std::vector<HostPath> paths(4);
  for (std::size_t e = 0; e < 4; ++e) {
    const Edge& ge = guest.edge(e);
    paths[e] = {eta[ge.from], eta[ge.to]};
  }
  emb.add_copy(eta, paths);
  emb.add_copy(eta, paths);  // identical copy: every link doubly used
  EXPECT_EQ(emb.num_copies(), 2);
  EXPECT_EQ(emb.dilation(), 1);
  EXPECT_EQ(emb.edge_congestion(), 2);
  EXPECT_NO_THROW(emb.verify_or_throw(2));
  EXPECT_THROW(emb.verify_or_throw(1), Error);
}

TEST(KCopyEmbedding, VerifyCatchesNonInjectiveCopy) {
  const Digraph guest = directed_cycle(4);
  KCopyEmbedding emb(guest, 2);
  std::vector<Node> eta{0, 0, 3, 2};
  std::vector<HostPath> paths(4, HostPath{0, 1});
  emb.add_copy(eta, paths);
  EXPECT_THROW(emb.verify_or_throw(), Error);
}

// A valid one-copy embedding of the directed 4-cycle into Q_2, for the
// error-path tests to corrupt one aspect at a time.
KCopyEmbedding one_good_copy() {
  const Digraph guest = directed_cycle(4);
  KCopyEmbedding emb(guest, 2);
  const std::vector<Node> eta{0b00, 0b01, 0b11, 0b10};
  std::vector<HostPath> paths(4);
  for (std::size_t e = 0; e < 4; ++e) {
    const Edge& ge = guest.edge(e);
    paths[e] = {eta[ge.from], eta[ge.to]};
  }
  emb.add_copy(eta, paths);
  return emb;
}

std::string verify_error(const KCopyEmbedding& emb) {
  try {
    emb.verify_or_throw();
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

TEST(KCopyEmbedding, VerifyReportsDuplicateEtaEntries) {
  auto emb = one_good_copy();
  std::vector<Node> eta{0b00, 0b01, 0b01, 0b10};  // 0b01 twice
  std::vector<HostPath> paths(4, HostPath{0b00, 0b01});
  emb.add_copy(eta, paths);
  EXPECT_NE(verify_error(emb).find("copy node map is not one-to-one"),
            std::string::npos);
}

TEST(KCopyEmbedding, VerifyReportsOutOfRangeEta) {
  auto emb = one_good_copy();
  std::vector<Node> eta{0b00, 0b01, 0b11, 0b100};  // 4 ∉ Q_2
  std::vector<HostPath> paths(4, HostPath{0b00, 0b01});
  emb.add_copy(eta, paths);
  EXPECT_NE(verify_error(emb).find("copy node map entry invalid"),
            std::string::npos);
}

TEST(KCopyEmbedding, VerifyReportsWrongPathEndpoints) {
  {
    auto emb = one_good_copy();
    std::vector<Node> eta{0b00, 0b01, 0b11, 0b10};
    std::vector<HostPath> paths(4);
    for (std::size_t e = 0; e < 4; ++e) {
      const Edge& ge = emb.guest().edge(e);
      paths[e] = {eta[ge.from], eta[ge.to]};
    }
    paths[0] = {0b01, 0b11};  // starts at η(1), not η(0)
    emb.add_copy(eta, paths);
    EXPECT_NE(verify_error(emb).find("copy path start mismatch"),
              std::string::npos);
  }
  {
    auto emb = one_good_copy();
    std::vector<Node> eta{0b00, 0b01, 0b11, 0b10};
    std::vector<HostPath> paths(4);
    for (std::size_t e = 0; e < 4; ++e) {
      const Edge& ge = emb.guest().edge(e);
      paths[e] = {eta[ge.from], eta[ge.to]};
    }
    paths[0] = {0b00, 0b10};  // valid walk, ends at η(3) instead of η(1)
    emb.add_copy(eta, paths);
    EXPECT_NE(verify_error(emb).find("copy path end mismatch"),
              std::string::npos);
  }
}

TEST(KCopyEmbedding, VerifyReportsNonAdjacentHop) {
  auto emb = one_good_copy();
  std::vector<Node> eta{0b00, 0b01, 0b11, 0b10};
  std::vector<HostPath> paths(4);
  for (std::size_t e = 0; e < 4; ++e) {
    const Edge& ge = emb.guest().edge(e);
    paths[e] = {eta[ge.from], eta[ge.to]};
  }
  paths[0] = {0b00, 0b11};  // flips two bits at once
  emb.add_copy(eta, paths);
  EXPECT_NE(verify_error(emb).find("copy path is not a hypercube walk"),
            std::string::npos);
}

TEST(KCopyEmbedding, VerifyErrorIsFirstFailingCopy) {
  // Corrupt copies 1 and 2 differently: the thrown error must always be
  // copy 1's, regardless of how the copies shard across pool workers.
  auto emb = one_good_copy();
  std::vector<Node> eta{0b00, 0b01, 0b11, 0b10};
  std::vector<HostPath> paths(4);
  for (std::size_t e = 0; e < 4; ++e) {
    const Edge& ge = emb.guest().edge(e);
    paths[e] = {eta[ge.from], eta[ge.to]};
  }
  auto bad_walk = paths;
  bad_walk[0] = {0b00, 0b11};
  emb.add_copy(eta, bad_walk);  // copy 1: invalid walk
  auto bad_eta = eta;
  bad_eta[3] = 0b100;
  emb.add_copy(bad_eta, paths);  // copy 2: η out of range
  EXPECT_NE(verify_error(emb).find("copy path is not a hypercube walk"),
            std::string::npos);
}

}  // namespace
}  // namespace hyperpath
