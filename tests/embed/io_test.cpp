#include "embed/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "base/error.hpp"
#include "core/cycle_multipath.hpp"
#include "core/largecopy.hpp"
#include "embed/classical.hpp"

namespace hyperpath {
namespace {

void expect_equal(const MultiPathEmbedding& a, const MultiPathEmbedding& b) {
  ASSERT_EQ(a.guest(), b.guest());
  ASSERT_EQ(a.host().dims(), b.host().dims());
  for (Node v = 0; v < a.guest().num_nodes(); ++v) {
    ASSERT_EQ(a.host_of(v), b.host_of(v));
  }
  for (std::size_t e = 0; e < a.guest().num_edges(); ++e) {
    const auto pa = a.paths(e);
    const auto pb = b.paths(e);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) ASSERT_EQ(pa[i], pb[i]);
  }
}

TEST(EmbeddingIo, RoundTripGrayCycle) {
  const auto emb = gray_code_cycle_embedding(5);
  std::stringstream ss;
  save_multipath(ss, emb);
  expect_equal(emb, load_multipath(ss));
}

TEST(EmbeddingIo, RoundTripTheorem1) {
  const auto emb = theorem1_cycle_embedding(6);
  std::stringstream ss;
  save_multipath(ss, emb);
  expect_equal(emb, load_multipath(ss));
}

TEST(EmbeddingIo, RoundTripLargeCopyNeedsLoadBound) {
  const auto emb = largecopy_directed_cycle(4);
  std::stringstream ss;
  save_multipath(ss, emb);
  // Default load rule rejects many-to-one...
  std::stringstream ss2(ss.str());
  EXPECT_NO_THROW(load_multipath(ss2, /*expected_load=*/4));
}

TEST(EmbeddingIo, RejectsWrongMagic) {
  std::stringstream ss("not-a-hyperpath-file v1\n");
  EXPECT_THROW(load_multipath(ss), Error);
}

TEST(EmbeddingIo, RejectsTruncation) {
  const auto emb = gray_code_cycle_embedding(4);
  std::stringstream ss;
  save_multipath(ss, emb);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_multipath(cut), Error);
}

TEST(EmbeddingIo, RejectsTamperedPath) {
  const auto emb = gray_code_cycle_embedding(4);
  std::stringstream ss;
  save_multipath(ss, emb);
  std::string text = ss.str();
  // Corrupt the first path's target node to a non-adjacent value.
  const auto pos = text.find("path 2 ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 7] = '9';  // first node of the path becomes bogus
  std::stringstream bad(text);
  EXPECT_THROW(load_multipath(bad), Error);
}

}  // namespace
}  // namespace hyperpath
