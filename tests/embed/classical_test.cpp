#include "embed/classical.hpp"

#include <gtest/gtest.h>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "base/gray.hpp"

namespace hyperpath {
namespace {

class GrayCycle : public ::testing::TestWithParam<int> {};

TEST_P(GrayCycle, IsDilation1Congestion1Load1) {
  const int n = GetParam();
  const auto emb = gray_code_cycle_embedding(n);
  EXPECT_EQ(emb.guest().num_nodes(), pow2(n));
  EXPECT_EQ(emb.load(), 1);
  EXPECT_EQ(emb.dilation(), 1);
  EXPECT_EQ(emb.width(), 1);
  EXPECT_EQ(emb.congestion(), 1);
  EXPECT_NO_THROW(emb.verify_or_throw(1, 1));
}

INSTANTIATE_TEST_SUITE_P(SmallCubes, GrayCycle,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 10));

TEST(GrayCycle, UsesOnlyOneLinkPerNode) {
  // Of the n outgoing links of each node, exactly one is used — the waste
  // Section 2 describes.
  const auto emb = gray_code_cycle_embedding(5);
  const auto cong = emb.congestion_per_link();
  const Hypercube& q = emb.host();
  for (Node v = 0; v < q.num_nodes(); ++v) {
    int used = 0;
    for (Dim d = 0; d < q.dims(); ++d) used += cong[q.edge_id(v, d)] > 0;
    EXPECT_EQ(used, 1);
  }
}

TEST(GrayGrid, TwoAxisTorus) {
  const GridSpec spec{{8, 8}, true};
  const auto emb = gray_code_grid_embedding(spec);
  EXPECT_EQ(emb.host().dims(), 6);
  EXPECT_EQ(emb.load(), 1);
  EXPECT_EQ(emb.dilation(), 1);
  EXPECT_NO_THROW(emb.verify_or_throw(1, 1));
}

TEST(GrayGrid, ThreeAxisMixedSides) {
  const GridSpec spec{{4, 2, 8}, false};
  const auto emb = gray_code_grid_embedding(spec);
  EXPECT_EQ(emb.host().dims(), 2 + 1 + 3);
  EXPECT_EQ(emb.dilation(), 1);
  EXPECT_NO_THROW(emb.verify_or_throw(1, 1));
}

TEST(GrayGrid, RejectsNonPowerOfTwoSides) {
  EXPECT_THROW(gray_code_grid_embedding(GridSpec{{5, 8}, false}), Error);
}

TEST(BinomialTree, SpansWithDilation1) {
  const auto emb = spanning_binomial_tree_embedding(5);
  EXPECT_EQ(emb.guest().num_nodes(), 32u);
  EXPECT_EQ(emb.guest().num_edges(), 2u * 31u);
  EXPECT_EQ(emb.dilation(), 1);
  EXPECT_EQ(emb.load(), 1);
  EXPECT_NO_THROW(emb.verify_or_throw(1, 1));
}

// Lemma 1 as a KCopyEmbedding: n (even) or n−1 (odd) dilation-1 copies with
// joint edge-congestion 1.
class MultiCopyCycles : public ::testing::TestWithParam<int> {};

TEST_P(MultiCopyCycles, Lemma1Holds) {
  const int n = GetParam();
  const auto emb = multicopy_directed_cycles(n);
  EXPECT_EQ(emb.num_copies(), (n % 2 == 0) ? n : n - 1);
  EXPECT_EQ(emb.dilation(), 1);
  EXPECT_EQ(emb.edge_congestion(), 1);
  EXPECT_NO_THROW(emb.verify_or_throw(1));
}

INSTANTIATE_TEST_SUITE_P(SmallCubes, MultiCopyCycles,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(MultiCopyCycles, EvenCubeSaturatesAllLinks) {
  // For even n, congestion is exactly 1 on *every* directed link.
  const auto emb = multicopy_directed_cycles(6);
  for (auto c : emb.congestion_per_link()) EXPECT_EQ(c, 1u);
}

}  // namespace
}  // namespace hyperpath
