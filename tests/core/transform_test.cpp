#include "core/transform.hpp"

#include <gtest/gtest.h>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "embed/classical.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

// Theorem 4 instantiated on the Lemma-1 directed cycles (the case the paper
// itself spells out: c = 1, δ = 1 → n-packet cost 3).
class Theorem4Cycles : public ::testing::TestWithParam<int> {};

TEST_P(Theorem4Cycles, WidthNAndCost3) {
  const int n = GetParam();
  const auto copies = multicopy_directed_cycles(n);  // n copies, even n
  const auto emb = theorem4_transform(copies);
  EXPECT_EQ(emb.host().dims(), 2 * n);
  EXPECT_EQ(emb.guest().num_nodes(), pow2(2 * n));
  EXPECT_EQ(emb.width(), n);
  EXPECT_EQ(emb.load(), 1);
  EXPECT_EQ(emb.dilation(), 3);
  EXPECT_NO_THROW(emb.verify_or_throw(n, 1));

  // n-packet cost c + 2δ = 1 + 2 = 3.
  const auto r = measure_phase_cost(emb, n);
  EXPECT_EQ(r.makespan, 3);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, Theorem4Cycles, ::testing::Values(2, 4));

TEST(Theorem4, NonPowerOfTwoDimsCostOneMore) {
  // For n not a power of two the moments select copies mod n, so distinct
  // neighbor lines can carry the *same* copy; the projections then collide
  // and the middle step serializes once — measured cost 4 instead of 3.
  // (Section 5 makes the same power-of-two assumption for its windows.)
  const int n = 6;
  const auto emb = theorem4_transform(multicopy_directed_cycles(n));
  EXPECT_EQ(emb.width(), n);
  EXPECT_NO_THROW(emb.verify_or_throw(n, 1));
  const auto r = measure_phase_cost(emb, n);
  EXPECT_LE(r.makespan, 4);
}

TEST(Theorem4, XGraphHasRowAndColumnEdges) {
  const int n = 2;
  const auto copies = multicopy_directed_cycles(n);
  const auto emb = theorem4_transform(copies);
  // Every X vertex has out-degree 2δ = 2 (one row edge, one column edge).
  for (Node v = 0; v < emb.guest().num_nodes(); ++v) {
    EXPECT_EQ(emb.guest().out_degree(v), 2u);
  }
}

TEST(Theorem4, MiddleSegmentsLandInDistinctLines) {
  // The n detour paths of one edge visit n distinct neighbor rows
  // (moments of i ⊕ 2^k are pairwise distinct — Lemma 2 in action).
  const int n = 4;
  const auto emb = theorem4_transform(multicopy_directed_cycles(n));
  const auto bundle = emb.paths(0);
  ASSERT_EQ(bundle.size(), static_cast<std::size_t>(n));
  for (const auto& p : bundle) ASSERT_GE(p.size(), 3u);
  // The first detour hops differ pairwise (distinct detour lines).
  for (std::size_t a = 0; a < bundle.size(); ++a) {
    for (std::size_t b = a + 1; b < bundle.size(); ++b) {
      EXPECT_NE(bundle[a][1], bundle[b][1]);
    }
  }
}

TEST(Theorem4, RejectsWrongCopyCount) {
  const auto copies = multicopy_directed_cycles(5);  // 4 copies in Q_5
  EXPECT_THROW(theorem4_transform(copies), Error);
}

TEST(RepeatCopies, PadsRoundRobin) {
  const auto base = multicopy_directed_cycles(4);  // 4 copies
  const auto padded = repeat_copies(base, 6);
  EXPECT_EQ(padded.num_copies(), 6);
  // Copies 4 and 5 repeat copies 0 and 1.
  for (Node v = 0; v < 16; ++v) {
    EXPECT_EQ(padded.host_of(4, v), base.host_of(0, v));
    EXPECT_EQ(padded.host_of(5, v), base.host_of(1, v));
  }
  // Congestion doubles on the repeated copies but stays bounded.
  EXPECT_LE(padded.edge_congestion(), 2);
  EXPECT_NO_THROW(padded.verify_or_throw());
  EXPECT_THROW(repeat_copies(base, 3), Error);
}

}  // namespace
}  // namespace hyperpath
