#include "core/cycle_multipath.hpp"

#include <gtest/gtest.h>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "core/lower_bounds.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

TEST(Support, ReportsSupportedDimensions) {
  for (int n : {4, 5, 6, 7, 8, 9, 10, 11}) {
    EXPECT_TRUE(cycle_multipath_supported(n)) << n;
  }
  for (int n : {1, 2, 3, 12, 13, 14, 15}) {
    EXPECT_FALSE(cycle_multipath_supported(n)) << n;
  }
  EXPECT_TRUE(cycle_multipath_supported(16));
}

// Theorem 1 across all supported small n.
class Theorem1 : public ::testing::TestWithParam<int> {};

TEST_P(Theorem1, StructureMatchesTheorem) {
  const int n = GetParam();
  const int k = n / 4;
  const auto emb = theorem1_cycle_embedding(n);
  EXPECT_EQ(emb.guest().num_nodes(), pow2(n));
  EXPECT_EQ(emb.load(), 1);
  EXPECT_EQ(emb.width(), 2 * k + 1);
  EXPECT_GE(emb.width(), n / 2);  // the theorem's stated width ⌊n/2⌋
  EXPECT_EQ(emb.dilation(), 3);
  // verify_or_throw re-checks walk validity, endpoints, disjoint bundles.
  EXPECT_NO_THROW(emb.verify_or_throw(2 * k + 1, 1));
}

TEST_P(Theorem1, MeasuredHalfNPacketCostIsThree) {
  const int n = GetParam();
  const auto emb = theorem1_cycle_embedding(n);
  const auto r = measure_phase_cost(emb, n / 2);
  EXPECT_EQ(r.makespan, 3) << "⌊n/2⌋-packet cost";
}

TEST_P(Theorem1, ScheduledTwoKPlusTwoPacketCostIsThree) {
  // The remark after Theorem 1: (2k+2)-packet cost 3, using the direct
  // path at steps 1 and 3.
  const int n = GetParam();
  const int k = n / 4;
  const auto emb = theorem1_cycle_embedding(n);
  StoreForwardSim sim(n);
  const auto r = sim.run(theorem1_schedule_packets(emb, 2 * k + 2));
  EXPECT_EQ(r.makespan, 3);
}

INSTANTIATE_TEST_SUITE_P(SupportedDims, Theorem1,
                         ::testing::Values(4, 5, 6, 7, 8, 9, 10, 11));

TEST(Theorem1, CongestionIsBounded) {
  // A directed host edge carries at most 3 paths, and when it does they are
  // one first edge, one middle edge, and one last edge — scheduled at steps
  // 1, 2, 3 respectively, which is why the measured cost stays 3.
  const auto emb = theorem1_cycle_embedding(8);
  EXPECT_LE(emb.congestion(), 3);
}

TEST(Theorem1, EdgeSlotSlackNonNegative) {
  // Lemma 3's counting argument: path-edges must fit within 3 steps of
  // link capacity.
  const auto emb = theorem1_cycle_embedding(8);
  EXPECT_GE(edge_slot_slack(emb, 3), 0);
}

TEST(Theorem1, RejectsUnsupported) {
  EXPECT_THROW(theorem1_cycle_embedding(3), Error);
  EXPECT_THROW(theorem1_cycle_embedding(12), Error);
}

// Theorem 2 across supported n.
class Theorem2 : public ::testing::TestWithParam<int> {};

TEST_P(Theorem2, StructureMatchesTheorem) {
  const int n = GetParam();
  const int k = n / 4;
  const auto emb = theorem2_cycle_embedding(n);
  EXPECT_EQ(emb.guest().num_nodes(), pow2(n + 1));
  EXPECT_EQ(emb.load(), 2);
  EXPECT_EQ(emb.width(), 2 * k);
  EXPECT_EQ(emb.dilation(), 3);
  EXPECT_NO_THROW(emb.verify_or_throw(2 * k, 2));
}

TEST_P(Theorem2, MeasuredWidthPacketCostIsThree) {
  const int n = GetParam();
  const int k = n / 4;
  const auto emb = theorem2_cycle_embedding(n);
  const auto r = measure_phase_cost(emb, 2 * k);
  EXPECT_EQ(r.makespan, 3) << "w(n)-packet cost";
}

INSTANTIATE_TEST_SUITE_P(SupportedDims, Theorem2,
                         ::testing::Values(4, 5, 6, 7, 8, 9, 10, 11));

TEST(Theorem2, FullLinkUtilizationWhenNDivisibleBy4) {
  // "When n ≡ 0 (mod 4) all the hypercube edges are in use during each of
  // the 3 steps."
  const auto emb = theorem2_cycle_embedding(8);
  const auto r = measure_phase_cost(emb, 2 * (8 / 4));
  ASSERT_EQ(r.makespan, 3);
  for (double u : r.utilization.profile()) EXPECT_DOUBLE_EQ(u, 1.0);
}

TEST(Theorem2, WidthAtLemma3Bound) {
  // Lemma 3: no cost-3 embedding of the 2^{n+1}-cycle has p > ⌊n/2⌋; for
  // n ≡ 0 (mod 4) Theorem 2 achieves exactly p = 2k = ⌊n/2⌋.
  const int n = 8;
  const auto emb = theorem2_cycle_embedding(n);
  EXPECT_EQ(emb.width(), lemma3_max_cost3_packets(n));
}

TEST(Lemma3, Statements) {
  EXPECT_EQ(lemma3_min_dilation(1), 1);
  EXPECT_EQ(lemma3_min_dilation(2), 3);
  EXPECT_EQ(lemma3_min_dilation(5), 3);
  EXPECT_EQ(lemma3_max_cost3_packets(8), 4);
  EXPECT_EQ(lemma3_max_cost3_packets(9), 4);
  EXPECT_THROW(lemma3_min_dilation(0), Error);
}

TEST(Lemma3, Theorem1SitsWithinThreeStepCapacity) {
  for (int n : {4, 6, 8}) {
    const auto emb = theorem1_cycle_embedding(n);
    EXPECT_GE(edge_slot_slack(emb, 3), 0) << n;
    // One step of capacity is NOT enough for the widened embedding.
    EXPECT_LT(edge_slot_slack(emb, 1), 0) << n;
  }
}

}  // namespace
}  // namespace hyperpath
