#include <gtest/gtest.h>

#include "core/cycle_multipath.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

TEST(Theorem2Naive, StructurallyValidButCongested) {
  const int n = 8;
  const auto naive = theorem2_cycle_embedding_naive(n);
  // Same shape as the real construction...
  EXPECT_EQ(naive.width(), 4);
  EXPECT_EQ(naive.load(), 2);
  EXPECT_NO_THROW(naive.verify_or_throw(4, 2));
  // ...but without Lemma 2 the projections collide: congestion and cost
  // degrade strictly.
  const auto good = theorem2_cycle_embedding(n);
  EXPECT_GT(naive.congestion(), good.congestion());
  EXPECT_GT(measure_phase_cost(naive, 4).makespan,
            measure_phase_cost(good, 4).makespan);
}

TEST(Theorem2Naive, CostScalesWithNeighborCollisions) {
  // All 2k neighbor projections share host edges, so the w-packet cost is
  // ≈ w + 2 instead of 3.
  const auto naive = theorem2_cycle_embedding_naive(8);
  const int cost = measure_phase_cost(naive, 4).makespan;
  EXPECT_GE(cost, 5);
  EXPECT_LE(cost, 8);
}

}  // namespace
}  // namespace hyperpath
