#include "core/largecopy.hpp"

#include <gtest/gtest.h>

#include "base/bits.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

class LargeCycle : public ::testing::TestWithParam<int> {};

TEST_P(LargeCycle, Corollary3) {
  const int n = GetParam();
  const int copies = 2 * (n / 2);
  const auto emb = largecopy_directed_cycle(n);
  EXPECT_EQ(emb.guest().num_nodes(), copies * pow2(n));
  EXPECT_EQ(emb.load(), copies);
  EXPECT_EQ(emb.dilation(), 1);
  EXPECT_EQ(emb.congestion(), 1);
  EXPECT_NO_THROW(emb.verify_or_throw(1, copies));
}

INSTANTIATE_TEST_SUITE_P(SmallCubes, LargeCycle,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

TEST(LargeCycle, EvenCubeUsesEveryDirectedEdgeExactlyOnce) {
  const auto emb = largecopy_directed_cycle(6);
  for (auto c : emb.congestion_per_link()) EXPECT_EQ(c, 1u);
}

TEST(LargeCycle, OnePacketPhaseCostOneAtFullUtilization) {
  // No forwarding, all links busy: the §8.2 trade-off (load n instead of
  // length-3 paths).
  const auto emb = largecopy_directed_cycle(6);
  const auto r = measure_phase_cost(emb, 1);
  EXPECT_EQ(r.makespan, 1);
  EXPECT_DOUBLE_EQ(r.utilization.profile()[0], 1.0);
}

class UndirectedLargeCycle : public ::testing::TestWithParam<int> {};

TEST_P(UndirectedLargeCycle, Corollary3UndirectedHalf) {
  const int n = GetParam();
  const auto emb = largecopy_undirected_cycle(n);
  EXPECT_EQ(emb.guest().num_nodes(), (n / 2) * pow2(n));
  EXPECT_EQ(emb.load(), n / 2);
  EXPECT_EQ(emb.dilation(), 1);
  // Construction itself asserts each undirected link is used exactly once.
}

INSTANTIATE_TEST_SUITE_P(EvenCubes, UndirectedLargeCycle,
                         ::testing::Values(2, 4, 6, 8));

TEST(LargeCopyCcc, Lemma9Ccc) {
  const int n = 4;
  const auto emb = largecopy_ccc(n);
  EXPECT_EQ(emb.guest().num_nodes(), n * pow2(n));
  EXPECT_EQ(emb.load(), n);
  EXPECT_EQ(emb.dilation(), 1);
  EXPECT_EQ(emb.congestion(), 1);
  EXPECT_NO_THROW(emb.verify_or_throw(1, n));
}

TEST(LargeCopyCcc, StraightEdgesAreInternal) {
  const auto emb = largecopy_ccc(3);
  std::size_t internal = 0;
  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    internal += (emb.paths(e)[0].size() == 1);
  }
  EXPECT_EQ(internal, 3u * 8u);  // one straight edge per CCC vertex
}

TEST(LargeCopyButterfly, Lemma9Butterfly) {
  const int n = 4;
  const auto emb = largecopy_butterfly(n);
  EXPECT_EQ(emb.load(), n);
  EXPECT_EQ(emb.dilation(), 1);
  EXPECT_LE(emb.congestion(), 2);
  EXPECT_NO_THROW(emb.verify_or_throw(1, n));
}

TEST(LargeCopyFft, Lemma9Fft) {
  const int n = 4;
  const auto emb = largecopy_fft(n);
  EXPECT_EQ(emb.guest().num_nodes(), (n + 1) * pow2(n));
  EXPECT_EQ(emb.load(), n + 1);
  EXPECT_LE(emb.congestion(), 2);
  EXPECT_NO_THROW(emb.verify_or_throw(1, n + 1));
}

}  // namespace
}  // namespace hyperpath
