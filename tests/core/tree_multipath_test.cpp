#include "core/tree_multipath.hpp"

#include <gtest/gtest.h>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "base/rng.hpp"
#include "core/transform.hpp"
#include "graph/builders.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

class ButterflyMultiCopy : public ::testing::TestWithParam<int> {};

TEST_P(ButterflyMultiCopy, MCopiesWithO1Cost) {
  const int m = GetParam();
  const auto emb = butterfly_multicopy_embedding(m);
  EXPECT_EQ(emb.num_copies(), m);
  EXPECT_EQ(emb.guest().num_nodes(),
            static_cast<Node>(m) * static_cast<Node>(pow2(m)));
  // Guest exactly fills the host: one-to-one copies.
  EXPECT_EQ(emb.guest().num_nodes(), emb.host().num_nodes());
  EXPECT_LE(emb.dilation(), 2);
  // Congestion ≤ 8: undirected-CCC congestion 4 × butterfly-in-CCC
  // congestion 2 — O(1), as Theorem 5 needs.
  EXPECT_NO_THROW(emb.verify_or_throw(8));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, ButterflyMultiCopy,
                         ::testing::Values(4, 8));

TEST(ButterflyMultiCopy, RejectsDegenerateM) {
  EXPECT_THROW(butterfly_multicopy_embedding(2), Error);
  EXPECT_THROW(butterfly_multicopy_embedding(6), Error);
}

TEST(Theorem5, CbtIntoXIsDilation1) {
  const int m = 4;
  const int n = m + 2;  // m + log m
  const auto copies = repeat_copies(butterfly_multicopy_embedding(m), n);
  const auto x = theorem4_transform(copies);
  const auto cbt = cbt_into_x_butterfly(m, x.guest(), copies);
  EXPECT_EQ(cbt.guest().num_nodes(), pow2(2 * m) - 1);
  EXPECT_NO_THROW(cbt.verify_or_throw(/*dil=*/1, /*cong=*/-1, /*load=*/3));
}

class Theorem5 : public ::testing::TestWithParam<int> {};

TEST_P(Theorem5, WidthNAndConstantCost) {
  const int m = GetParam();
  const int n = m + floor_log2(m);
  const auto emb = theorem5_cbt_embedding(m);
  EXPECT_EQ(emb.guest().num_nodes(), pow2(2 * m) - 1);
  EXPECT_EQ(emb.host().dims(), 2 * n);
  EXPECT_EQ(emb.width(), n);
  EXPECT_LE(emb.load(), 3);  // the O(1) load Theorem 5 claims
  EXPECT_LE(emb.dilation(), 4);  // copy dilation ≤ 2 plus the two crossings
  EXPECT_NO_THROW(emb.verify_or_throw(n, /*expected_load=*/3));

  // n-packet cost c + 2δ: c is the multicopy cost (≤ 8 congestion here
  // plus the moment-mod-n collisions of non-power-of-two n), δ = 4 for the
  // symmetric butterfly.  O(1): independent of the tree size.
  const auto r = measure_phase_cost(emb, n);
  EXPECT_LE(r.makespan, 8 + 2 * 4 + 8);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, Theorem5, ::testing::Values(4));

TEST(ArbitraryTree, RandomTreesEmbedWithWidthN) {
  Rng rng(77);
  const int m = 4;
  const int n = m + 2;
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<Node> parent;
    const Node size = 8 + static_cast<Node>(rng.below(7));
    const Digraph tree = random_binary_tree(size, rng, &parent);
    const auto emb = arbitrary_tree_multipath(tree, parent, m);
    EXPECT_EQ(emb.guest().num_nodes(), size);
    // Multi-hop composition thins bundles to a maximal edge-disjoint
    // subset, so the achieved width lies in [1, n] (n when the tree edges
    // compose cleanly; see compose_multipath).
    EXPECT_GE(emb.width(), 1);
    EXPECT_LE(emb.width(), n);
    EXPECT_NO_THROW(emb.verify_or_throw());
  }
}

TEST(ArbitraryTree, RejectsOversized) {
  Rng rng(1);
  std::vector<Node> parent;
  const Digraph tree = random_binary_tree(300, rng, &parent);
  EXPECT_THROW(arbitrary_tree_multipath(tree, parent, 4), Error);  // cap 255
}

}  // namespace
}  // namespace hyperpath
