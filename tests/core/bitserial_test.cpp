#include "core/bitserial.hpp"

#include <gtest/gtest.h>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "base/rng.hpp"
#include "core/transform.hpp"
#include "core/tree_multipath.hpp"
#include "graph/builders.hpp"

namespace hyperpath {
namespace {

TEST(CccRoute, ReachesDestination) {
  const int n = 4;
  const LevelColumnLayout lay = ccc_layout(n);
  const Digraph ccc = ccc_directed(n);
  Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    const Node s = static_cast<Node>(rng.below(lay.num_nodes()));
    const Node d = static_cast<Node>(rng.below(lay.num_nodes()));
    const auto path = ccc_route(n, s, d);
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), d);
    EXPECT_LE(path.size(), 3u * n + 1);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(ccc.has_edge(path[i], path[i + 1]))
          << "hop " << i << " trial " << trial;
    }
  }
}

TEST(CccRoute, TrivialRoute) {
  const auto path = ccc_route(4, 7, 7);
  EXPECT_EQ(path, (std::vector<Node>{7}));
}

TEST(CccSplit, WormsAreValidAndSplit) {
  const int stages = 4;
  const auto emb = ccc_multicopy_embedding(stages);
  Rng rng(12);
  const auto pattern = random_permutation_pattern(emb.host().dims(), rng);
  const int flits = 64;
  const auto worms = ccc_split_worms(emb, pattern, flits);
  // One worm per copy per non-trivial source.
  std::size_t nontrivial = 0;
  for (Node v = 0; v < pattern.size(); ++v) nontrivial += (pattern[v] != v);
  EXPECT_EQ(worms.size(), nontrivial * stages);
  for (const auto& w : worms) {
    EXPECT_EQ(w.flits, flits / stages);
    EXPECT_TRUE(is_valid_path(emb.host(), w.route));
  }
}

TEST(CccSplit, CompletesFasterThanSingleCopy) {
  const int stages = 4;
  const auto emb = ccc_multicopy_embedding(stages);
  Rng rng(13);
  const auto pattern = random_permutation_pattern(emb.host().dims(), rng);
  const int flits = 128;

  WormholeSim sim(emb.host().dims());
  const auto split = sim.run(ccc_split_worms(emb, pattern, flits));
  const auto single = sim.run(ccc_single_copy_worms(emb, 0, pattern, flits));
  // Splitting into 4 pieces of 32 flits each must beat 128-flit messages
  // on one copy.
  EXPECT_LT(split.makespan, single.makespan);
}

TEST(EcubeWorms, BaselineValid) {
  const int dims = 5;
  Rng rng(14);
  const auto pattern = random_permutation_pattern(dims, rng);
  const auto worms = ecube_worms(dims, pattern, 16);
  const Hypercube q(dims);
  for (const auto& w : worms) {
    EXPECT_TRUE(is_valid_path(q, w.route));
    EXPECT_EQ(w.flits, 16);
  }
}

TEST(ButterflyRoute, ReachesDestination) {
  const int m = 4;
  const Digraph bf = butterfly_directed(m);
  const LevelColumnLayout lay = butterfly_layout(m);
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const Node s = static_cast<Node>(rng.below(lay.num_nodes()));
    const Node d = static_cast<Node>(rng.below(lay.num_nodes()));
    const auto path = butterfly_route(m, s, d);
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), d);
    EXPECT_LE(path.size(), 2u * m);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(bf.has_edge(path[i], path[i + 1]));
    }
  }
}

TEST(XTwoPhase, RoutesStayInXAndSplit) {
  const int m = 4;
  const int n = 6;
  const auto copies = repeat_copies(butterfly_multicopy_embedding(m), n);
  const auto x = theorem4_transform(copies);
  Rng rng(17);
  // Partial permutation over a sample of X vertices.
  Pattern pattern(x.guest().num_nodes());
  for (Node v = 0; v < pattern.size(); ++v) pattern[v] = v;
  std::vector<Node> sample;
  for (int i = 0; i < 16; ++i) {
    sample.push_back(static_cast<Node>(rng.below(pattern.size())));
  }
  for (std::size_t i = 0; i + 1 < sample.size(); i += 2) {
    pattern[sample[i]] = sample[i + 1];
  }
  const auto worms = x_two_phase_worms(m, x, copies, pattern, 60);
  EXPECT_FALSE(worms.empty());
  for (const auto& w : worms) {
    EXPECT_TRUE(is_valid_path(x.host(), w.route));
    EXPECT_EQ(w.flits, 10);  // 60 flits over n = 6 pieces
  }
  // Each message produced n worms with matching endpoints.
  EXPECT_EQ(worms.size() % n, 0u);
  WormholeSim sim(x.host().dims());
  EXPECT_GT(sim.run(worms).makespan, 0);
}

TEST(XTwoPhase, RouteEndpoints) {
  const int m = 4;
  const int n = 6;
  const auto copies = repeat_copies(butterfly_multicopy_embedding(m), n);
  Rng rng(23);
  const Node nx = static_cast<Node>(pow2(2 * n));
  for (int trial = 0; trial < 20; ++trial) {
    const Node s = static_cast<Node>(rng.below(nx));
    const Node d = static_cast<Node>(rng.below(nx));
    const auto r = x_two_phase_route(m, copies, s, d);
    EXPECT_EQ(r.front(), s);
    EXPECT_EQ(r.back(), d);
  }
}

TEST(CccSplit, RejectsTinyMessages) {
  const auto emb = ccc_multicopy_embedding(4);
  Pattern pattern(emb.host().num_nodes(), 0);
  for (Node v = 0; v < pattern.size(); ++v) pattern[v] = v;
  EXPECT_THROW(ccc_split_worms(emb, pattern, 2), Error);
}

}  // namespace
}  // namespace hyperpath
