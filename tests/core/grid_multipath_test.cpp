#include "core/grid_multipath.hpp"

#include <gtest/gtest.h>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

TEST(GridSupport, ChecksAxes) {
  EXPECT_TRUE(grid_multipath_supported(GridSpec{{16, 16}, false}));
  EXPECT_TRUE(grid_multipath_supported(GridSpec{{16, 16}, true}));
  EXPECT_TRUE(grid_multipath_supported(GridSpec{{10, 16}, false}));  // rounds up
  EXPECT_FALSE(grid_multipath_supported(GridSpec{{10, 16}, true}));  // wrap
  EXPECT_FALSE(grid_multipath_supported(GridSpec{{8, 8}, false}));   // 3 bits
  EXPECT_FALSE(grid_multipath_supported(GridSpec{{1, 16}, false}));
}

// Corollary 1: k-axis grid with sides 2^a, width ⌊a/2⌋+…, cost 3.
TEST(GridMultipath, TwoAxisTorus) {
  const GridSpec spec{{16, 16}, true};
  const auto emb = grid_multipath_embedding(spec);
  EXPECT_EQ(emb.host().dims(), 8);
  EXPECT_EQ(emb.load(), 1);
  EXPECT_EQ(emb.width(), 2 * (4 / 4) + 1);  // per-axis 2k+1 = 3
  EXPECT_EQ(emb.dilation(), 3);
  EXPECT_NO_THROW(emb.verify_or_throw());

  // Cost 3 with ⌊a/2⌋ = 2 packets per edge.
  const auto r = measure_phase_cost(emb, 2);
  EXPECT_EQ(r.makespan, 3);
}

TEST(GridMultipath, NonWrapGridUsesSubPath) {
  const GridSpec spec{{16, 16}, false};
  const auto emb = grid_multipath_embedding(spec);
  EXPECT_EQ(emb.load(), 1);
  EXPECT_NO_THROW(emb.verify_or_throw());
  const auto r = measure_phase_cost(emb, 2);
  EXPECT_LE(r.makespan, 3);
}

TEST(GridMultipath, RoundedUpSidesHaveExpansion) {
  const GridSpec spec{{10, 16}, false};
  const auto emb = grid_multipath_embedding(spec);
  EXPECT_EQ(emb.host().dims(), 4 + 4);
  EXPECT_EQ(emb.load(), 1);
  // 160 guest nodes in a 256-node host; smallest fitting hypercube is 256,
  // so paper-expansion is 1 here even though nodes go unused.
  EXPECT_DOUBLE_EQ(emb.expansion(), 1.0);
  EXPECT_NO_THROW(emb.verify_or_throw());
}

TEST(GridMultipath, ThreeAxis) {
  const GridSpec spec{{16, 16, 16}, true};
  const auto emb = grid_multipath_embedding(spec);
  EXPECT_EQ(emb.host().dims(), 12);
  EXPECT_NO_THROW(emb.verify_or_throw());
  const auto r = measure_phase_cost(emb, 2);
  EXPECT_EQ(r.makespan, 3);
}

TEST(GridMultipath, RejectsUnsupported) {
  EXPECT_THROW(grid_multipath_embedding(GridSpec{{8, 8}, false}), Error);
}

// §8.1: multiple-copy tori from multiple-copy cycles via cross products.
TEST(MulticopyTorus, CopiesWithJointCongestionOne) {
  const GridSpec spec{{16, 16}, true};
  const auto emb = multicopy_torus(spec);
  EXPECT_EQ(emb.num_copies(), 4);  // min axis family size = 2·⌊4/2⌋
  EXPECT_EQ(emb.dilation(), 1);
  EXPECT_EQ(emb.edge_congestion(), 1);
  EXPECT_NO_THROW(emb.verify_or_throw(1));
}

TEST(MulticopyTorus, MixedSides) {
  const auto emb = multicopy_torus(GridSpec{{4, 16}, true});
  EXPECT_EQ(emb.num_copies(), 2);  // limited by the 2-bit axis
  EXPECT_NO_THROW(emb.verify_or_throw(1));
}

TEST(MulticopyTorus, PhaseCostOne) {
  const auto emb = multicopy_torus(GridSpec{{8, 8}, true});
  EXPECT_EQ(measure_phase_cost(emb, 1).makespan, 1);
}

TEST(MulticopyTorus, Rejections) {
  EXPECT_THROW(multicopy_torus(GridSpec{{16, 16}, false}), Error);  // no wrap
  EXPECT_THROW(multicopy_torus(GridSpec{{16, 10}, true}), Error);   // non-pow2
  EXPECT_THROW(multicopy_torus(GridSpec{{2, 16}, true}), Error);    // side 2
}

}  // namespace
}  // namespace hyperpath
