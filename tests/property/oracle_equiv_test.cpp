// Backend equivalence: the algebraic PathOracle generators must be
// bit-identical to MaterializedOracle over the real embeddings — same
// guest shape, same out-edge enumeration, same η, same bundle widths and
// declared hop counts, same node sequence of every bundle path of every
// guest edge.  Exhaustive at materializable sizes; this suite is the
// license to run the algebraic backend alone at Q_20+ where the
// materialized side cannot exist.
#include <gtest/gtest.h>

#include "core/algebraic_oracle.hpp"
#include "core/cycle_multipath.hpp"
#include "core/grid_multipath.hpp"
#include "core/largecopy.hpp"
#include "embed/path_oracle.hpp"

namespace hyperpath {
namespace {

/// Exhaustively compares two oracles: shape, η, out-edge walks, widths,
/// declared hop counts, and the node sequence of every path.
void expect_equivalent(const PathOracle& alg, const PathOracle& mat) {
  ASSERT_EQ(alg.host_dims(), mat.host_dims());
  ASSERT_EQ(alg.guest_nodes(), mat.guest_nodes());
  ASSERT_EQ(alg.guest_edges(), mat.guest_edges());
  for (OracleId g = 0; g < alg.guest_nodes(); ++g) {
    ASSERT_EQ(alg.host_of(g), mat.host_of(g)) << "eta mismatch at guest " << g;
    ASSERT_EQ(alg.out_degree(g), mat.out_degree(g)) << "guest " << g;
    for (int s = 0; s < alg.out_degree(g); ++s) {
      const OracleEdge e = alg.out_edge(g, s);
      ASSERT_EQ(e, mat.out_edge(g, s)) << "guest " << g << " slot " << s;
      ASSERT_EQ(alg.width(e), mat.width(e)) << "guest " << g << " slot " << s;
      for (int i = 0; i < alg.width(e); ++i) {
        ASSERT_EQ(alg.path_hops(e, i), mat.path_hops(e, i))
            << "guest " << g << " slot " << s << " path " << i;
        ASSERT_EQ(alg.path_vec(e, i), mat.path_vec(e, i))
            << "guest " << g << " slot " << s << " path " << i;
      }
    }
  }
}

TEST(OracleEquiv, Theorem1AllSupportedSmall) {
  for (const int n : {4, 5, 6, 7, 8, 9, 10, 11}) {
    SCOPED_TRACE(n);
    const MultiPathEmbedding emb = theorem1_cycle_embedding(n);
    const MaterializedOracle mat(emb);
    const auto alg = algebraic_theorem1_oracle(n);
    expect_equivalent(*alg, mat);
  }
}

TEST(OracleEquiv, Theorem1Q16) {
  const MultiPathEmbedding emb = theorem1_cycle_embedding(16);
  const MaterializedOracle mat(emb);
  const auto alg = algebraic_theorem1_oracle(16);
  expect_equivalent(*alg, mat);
}

TEST(OracleEquiv, TorusSquare) {
  const GridSpec spec{{16, 16}, true};
  ASSERT_TRUE(algebraic_grid_supported(spec));
  const MultiPathEmbedding emb = grid_multipath_embedding(spec);
  const MaterializedOracle mat(emb);
  const auto alg = algebraic_grid_oracle(spec);
  expect_equivalent(*alg, mat);
}

TEST(OracleEquiv, TorusRectangular) {
  const GridSpec spec{{256, 16}, true};
  ASSERT_TRUE(algebraic_grid_supported(spec));
  const MultiPathEmbedding emb = grid_multipath_embedding(spec);
  const MaterializedOracle mat(emb);
  const auto alg = algebraic_grid_oracle(spec);
  expect_equivalent(*alg, mat);
}

TEST(OracleEquiv, GridNonPow2NonWrap) {
  const GridSpec spec{{10, 17}, false};
  ASSERT_TRUE(algebraic_grid_supported(spec));
  const MultiPathEmbedding emb = grid_multipath_embedding(spec);
  const MaterializedOracle mat(emb);
  const auto alg = algebraic_grid_oracle(spec);
  expect_equivalent(*alg, mat);
}

TEST(OracleEquiv, TorusQ16Large) {
  const GridSpec spec{{1024, 64}, true};
  ASSERT_TRUE(algebraic_grid_supported(spec));
  const MultiPathEmbedding emb = grid_multipath_embedding(spec);
  const MaterializedOracle mat(emb);
  const auto alg = algebraic_grid_oracle(spec);
  expect_equivalent(*alg, mat);
}

TEST(OracleEquiv, Largecopy) {
  for (const int n : {2, 3, 4, 5, 6, 7, 8}) {
    SCOPED_TRACE(n);
    const MultiPathEmbedding emb = largecopy_directed_cycle(n);
    const MaterializedOracle mat(emb);
    const auto alg = algebraic_largecopy_oracle(n);
    expect_equivalent(*alg, mat);
  }
}

/// The sampling verifier must agree between backends too: same seed, same
/// sampled edges, same digest — so a Q_20+ algebraic digest is comparable
/// to a small-n materialized one in reports.
TEST(OracleEquiv, SampleDigestMatchesAcrossBackends) {
  const MultiPathEmbedding emb = theorem1_cycle_embedding(8);
  const MaterializedOracle mat(emb);
  const auto alg = algebraic_theorem1_oracle(8);
  const OracleSampleReport a = oracle_sample_check(*alg, 64, 123);
  const OracleSampleReport b = oracle_sample_check(mat, 64, 123);
  EXPECT_EQ(a.edges_checked, b.edges_checked);
  EXPECT_EQ(a.paths_checked, b.paths_checked);
  EXPECT_EQ(a.hops_checked, b.hops_checked);
  EXPECT_EQ(a.node_digest, b.node_digest);
}

}  // namespace
}  // namespace hyperpath
