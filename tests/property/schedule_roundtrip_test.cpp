// Property: FaultSchedule's text format round-trips bit-identically —
// serialize → parse → serialize is the identity on randomized schedules of
// every shape the generator can produce (permanent and transient link
// faults, node faults, repair events, empty schedules).  The text format is
// the interchange between `hyperpath_cli faults replay`, checked-in
// schedule files and the campaign tooling, so byte-stability is load-
// bearing.  Also pins the parser's line-numbered error convention.
#include <gtest/gtest.h>

#include <string>

#include "base/error.hpp"
#include "base/rng.hpp"
#include "sim/faults.hpp"

namespace hyperpath {
namespace {

void expect_roundtrip(const FaultSchedule& s, const std::string& label) {
  const std::string text = s.serialize();
  const FaultSchedule parsed = FaultSchedule::parse(text);
  EXPECT_EQ(parsed.dims(), s.dims()) << label;
  EXPECT_EQ(parsed.events(), s.events()) << label;
  EXPECT_EQ(parsed.serialize(), text) << label;  // bit-identical text
}

TEST(FaultScheduleRoundTrip, RandomizedSchedulesSurviveTextRoundTrips) {
  Rng meta(20260808);
  for (int iter = 0; iter < 60; ++iter) {
    const int dims = 3 + static_cast<int>(meta.below(6));  // Q_3 .. Q_8
    RandomScheduleSpec spec;
    spec.window = 1 + static_cast<int>(meta.below(12));
    spec.link_rate = 0.25 * static_cast<double>(meta.below(5));  // 0 .. 1
    spec.node_rate = 0.1 * static_cast<double>(meta.below(3));
    spec.transient_fraction = 0.25 * static_cast<double>(meta.below(5));
    spec.min_repair = 1 + static_cast<int>(meta.below(4));
    spec.max_repair = spec.min_repair + static_cast<int>(meta.below(12));
    Rng rng(1000 + static_cast<std::uint64_t>(iter));
    const FaultSchedule s = FaultSchedule::random(dims, spec, rng);
    expect_roundtrip(s, "iter=" + std::to_string(iter) +
                            " dims=" + std::to_string(dims) +
                            " events=" + std::to_string(s.size()));
  }
}

TEST(FaultScheduleRoundTrip, HandCraftedEdgeCasesSurviveToo) {
  {
    const FaultSchedule empty(5);
    expect_roundtrip(empty, "empty schedule");
  }
  {
    FaultSchedule s(4);
    s.link_down(0, 0b0000, 0b1000);
    s.transient_link(0, 1, 0b0001, 0b0011);   // shortest possible repair
    s.transient_node(2, 1000000, 0b1111);     // very distant repair
    s.node_down(1000001, 0b0000);
    expect_roundtrip(s, "mixed kinds");
  }
}

TEST(FaultScheduleRoundTrip, ParseErrorsCarryLineNumbers) {
  const auto error_of = [](const std::string& text) -> std::string {
    try {
      FaultSchedule::parse(text);
    } catch (const Error& e) {
      return e.what();
    }
    return "";
  };
  // Same convention as JsonlReader: "... line N: message".
  EXPECT_NE(error_of("dims 3\n0 link-down 0 1\nbogus\n")
                .find("fault schedule line 3"),
            std::string::npos);
  EXPECT_NE(error_of("0 link-down 0 1\n").find("fault schedule line 1"),
            std::string::npos);
  EXPECT_NE(error_of("dims 3\n\n# comment\n0 melt-down 1\n")
                .find("fault schedule line 4"),
            std::string::npos);
  // Semantic errors (not just syntax) carry the offending line too.
  EXPECT_NE(error_of("dims 3\n0 link-down 0 3\n")
                .find("fault schedule line 2"),
            std::string::npos);
}

}  // namespace
}  // namespace hyperpath
