// Randomized property sweep over the IDA codec: for random (n, m, size),
// any m-subset reconstructs and the overhead is exactly n/m.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "sim/ida.hpp"

namespace hyperpath {
namespace {

class IdaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IdaProperty, RandomSubsetsReconstruct) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.below(14));
  const int m = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  const std::size_t size = 1 + rng.below(2000);

  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));

  const auto frags = ida_encode(data, n, m);
  ASSERT_EQ(frags.size(), static_cast<std::size_t>(n));
  const std::size_t frag_size = (size + m - 1) / m;
  for (const auto& f : frags) EXPECT_EQ(f.payload.size(), frag_size);

  // Five random m-subsets.
  for (int trial = 0; trial < 5; ++trial) {
    auto order = rng.permutation(static_cast<std::uint32_t>(n));
    std::vector<IdaFragment> subset;
    for (int i = 0; i < m; ++i) subset.push_back(frags[order[i]]);
    const auto decoded = ida_decode(subset, m, size);
    ASSERT_TRUE(decoded.has_value()) << "n=" << n << " m=" << m;
    EXPECT_EQ(*decoded, data);
  }

  // m−1 fragments must fail.
  if (m > 1) {
    std::vector<IdaFragment> tooFew(frags.begin(), frags.begin() + m - 1);
    EXPECT_FALSE(ida_decode(tooFew, m, size).has_value());
  }
}

TEST_P(IdaProperty, TamperedFragmentChangesOutput) {
  Rng rng(GetParam() ^ 0xF00D);
  const int n = 5, m = 3;
  std::vector<std::uint8_t> data(257);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  auto frags = ida_encode(data, n, m);
  // Corrupt one byte of one used fragment: reconstruction differs.
  frags[1].payload[rng.below(frags[1].payload.size())] ^= 0x5A;
  const std::vector<IdaFragment> subset{frags[0], frags[1], frags[2]};
  const auto decoded = ida_decode(subset, m, data.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_NE(*decoded, data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdaProperty,
                         ::testing::Values(10u, 20u, 30u, 40u, 50u, 60u, 70u,
                                           80u, 90u, 100u));

}  // namespace
}  // namespace hyperpath
