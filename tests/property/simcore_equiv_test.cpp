// Randomized equivalence: the flat-arena simulators (simcore.hpp) must be
// bit-identical — results AND trace streams — to the retained map-based
// reference implementations (reference_sim.hpp) under FIFO, farthest-first,
// fault schedules and staggered releases, and the parallel simulator must
// match the serial one at several thread counts.  These tests are the
// license to keep optimizing the hot loops: anything they accept emits the
// same bytes the pre-flat-arena code did.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "sim/faults.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/reference_sim.hpp"
#include "sim/store_forward.hpp"
#include "sim/workloads.hpp"
#include "sim/wormhole.hpp"

namespace hyperpath {
namespace {

using obs::RingBufferSink;
using obs::TraceEvent;
using refsim::RefStoreForwardSim;
using refsim::RefWormholeSim;

std::vector<Packet> random_packets(int dims, int count, Rng& rng,
                                   int max_release) {
  const Hypercube q(dims);
  std::vector<Packet> out;
  for (int i = 0; i < count; ++i) {
    Packet p;
    const Node s = static_cast<Node>(rng.below(q.num_nodes()));
    const Node d = static_cast<Node>(rng.below(q.num_nodes()));
    p.route = ecube_route(q, s, d);
    p.release = max_release > 0 ? static_cast<int>(rng.below(max_release)) : 0;
    out.push_back(std::move(p));
  }
  return out;
}

/// A schedule mixing permanent/transient link and node faults, biased to
/// fire while the workload above is still in flight.
FaultSchedule random_schedule(int dims, Rng& rng) {
  const Hypercube q(dims);
  FaultSchedule sched(dims);
  const int events = 3 + static_cast<int>(rng.below(6));
  for (int i = 0; i < events; ++i) {
    const int step = static_cast<int>(rng.below(8));
    const Node u = static_cast<Node>(rng.below(q.num_nodes()));
    switch (rng.below(4)) {
      case 0:
        sched.link_down(step, u, q.neighbor(u, static_cast<Dim>(
                                                   rng.below(dims))));
        break;
      case 1:
        sched.transient_link(step, step + 1 + static_cast<int>(rng.below(5)),
                             u,
                             q.neighbor(u, static_cast<Dim>(rng.below(dims))));
        break;
      case 2:
        sched.node_down(step, u);
        break;
      default:
        sched.transient_node(step, step + 1 + static_cast<int>(rng.below(5)),
                             u);
        break;
    }
  }
  return sched;
}

void expect_same_result(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_transmissions, b.total_transmissions);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.max_queue, b.max_queue);
  EXPECT_EQ(a.dim_transmissions, b.dim_transmissions);
  EXPECT_EQ(a.latency, b.latency);
}

void expect_same_fault_result(const FaultRunResult& a,
                              const FaultRunResult& b) {
  expect_same_result(a.sim, b.sim);
  EXPECT_EQ(a.fates, b.fates);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.lost, b.lost);
}

void expect_same_trace(const RingBufferSink& a, const RingBufferSink& b) {
  ASSERT_EQ(a.total(), b.total());
  ASSERT_EQ(a.dropped(), 0u) << "ring too small for exact comparison";
  EXPECT_EQ(a.events(), b.events());
}

class SimcoreEquiv : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimcoreEquiv, SerialMatchesReferenceBothPolicies) {
  Rng rng(GetParam());
  const int dims = 3 + static_cast<int>(rng.below(5));
  const auto packets = random_packets(dims, 150, rng, 6);
  for (auto policy : {Arbitration::kFifo, Arbitration::kFarthestFirst}) {
    RingBufferSink flat_sink, ref_sink;
    const auto flat =
        StoreForwardSim(dims).run(packets, policy, 1 << 22, &flat_sink);
    const auto ref =
        RefStoreForwardSim(dims).run(packets, policy, 1 << 22, &ref_sink);
    expect_same_result(flat, ref);
    expect_same_trace(flat_sink, ref_sink);
  }
}

TEST_P(SimcoreEquiv, SerialMatchesReferenceUnderFaults) {
  Rng rng(GetParam() ^ 0xFA17);
  const int dims = 4 + static_cast<int>(rng.below(3));
  const auto packets = random_packets(dims, 120, rng, 4);
  const auto sched = random_schedule(dims, rng);
  for (auto policy : {Arbitration::kFifo, Arbitration::kFarthestFirst}) {
    RingBufferSink flat_sink, ref_sink;
    const auto flat = StoreForwardSim(dims).run_with_faults(
        packets, sched, policy, 1 << 22, &flat_sink);
    const auto ref = RefStoreForwardSim(dims).run_with_faults(
        packets, sched, policy, 1 << 22, &ref_sink);
    expect_same_fault_result(flat, ref);
    expect_same_trace(flat_sink, ref_sink);
  }
}

TEST_P(SimcoreEquiv, SoaEngineMatchesFlatArenaBothPolicies) {
  Rng rng(GetParam() ^ 0x50A0);
  const int dims = 3 + static_cast<int>(rng.below(5));
  const auto packets = random_packets(dims, 150, rng, 6);
  const StoreForwardSim soa(dims, SimEngine::kSoa);
  const StoreForwardSim flat(dims, SimEngine::kFlatArena);
  for (auto policy : {Arbitration::kFifo, Arbitration::kFarthestFirst}) {
    RingBufferSink soa_sink, flat_sink;
    const auto a = soa.run(packets, policy, 1 << 22, &soa_sink);
    const auto b = flat.run(packets, policy, 1 << 22, &flat_sink);
    expect_same_result(a, b);
    // Even the active-set accounting agrees: both engines walk the same
    // worklist discipline, so the S4 speedup table's FATAL gate on
    // link_visits is backed by this property.
    EXPECT_EQ(a.link_visits, b.link_visits);
    expect_same_trace(soa_sink, flat_sink);
    // Throughput is first-class but never part of the determinism
    // contract: both runs must stamp it, and nothing above compared it.
    EXPECT_GT(a.elapsed_seconds, 0.0);
    EXPECT_GT(b.elapsed_seconds, 0.0);
    if (a.total_transmissions > 0) {
      EXPECT_GT(a.packet_steps_per_sec(), 0.0);
    }
  }
}

TEST_P(SimcoreEquiv, SoaEngineMatchesFlatArenaUnderFaults) {
  Rng rng(GetParam() ^ 0x50A1);
  const int dims = 4 + static_cast<int>(rng.below(3));
  const auto packets = random_packets(dims, 120, rng, 4);
  const auto sched = random_schedule(dims, rng);
  for (auto policy : {Arbitration::kFifo, Arbitration::kFarthestFirst}) {
    RingBufferSink soa_sink, flat_sink;
    const auto a = StoreForwardSim(dims, SimEngine::kSoa)
                       .run_with_faults(packets, sched, policy, 1 << 22,
                                        &soa_sink);
    const auto b = StoreForwardSim(dims, SimEngine::kFlatArena)
                       .run_with_faults(packets, sched, policy, 1 << 22,
                                        &flat_sink);
    expect_same_fault_result(a, b);
    EXPECT_EQ(a.sim.link_visits, b.sim.link_visits);
    expect_same_trace(soa_sink, flat_sink);
  }
}

TEST_P(SimcoreEquiv, ParallelMatchesReferenceAcrossThreadCounts) {
  Rng rng(GetParam() ^ 0x9E3779B9);
  const int dims = 4 + static_cast<int>(rng.below(3));
  const auto packets = random_packets(dims, 200, rng, 5);
  RingBufferSink ref_sink;
  const auto ref = RefStoreForwardSim(dims).run(packets, Arbitration::kFifo,
                                                1 << 22, &ref_sink);
  for (int threads : {1, 2, 3, 5, 8}) {
    RingBufferSink par_sink;
    const auto par = ParallelStoreForwardSim(dims, threads)
                         .run(packets, 1 << 22, &par_sink);
    expect_same_result(par, ref);
    expect_same_trace(par_sink, ref_sink);
  }
}

TEST_P(SimcoreEquiv, ParallelMatchesSerialUnderFaults) {
  Rng rng(GetParam() ^ 0xC0FFEE);
  const int dims = 4 + static_cast<int>(rng.below(3));
  const auto packets = random_packets(dims, 150, rng, 4);
  const auto sched = random_schedule(dims, rng);
  RingBufferSink ser_sink;
  const auto ser = StoreForwardSim(dims).run_with_faults(
      packets, sched, Arbitration::kFifo, 1 << 22, &ser_sink);
  for (int threads : {2, 4, 7}) {
    RingBufferSink par_sink;
    const auto par = ParallelStoreForwardSim(dims, threads)
                         .run_with_faults(packets, sched, 1 << 22, &par_sink);
    expect_same_fault_result(par, ser);
    expect_same_trace(par_sink, ser_sink);
    // The shards partition the serial worklist, so even the active-set
    // accounting agrees (stale entries included).
    EXPECT_EQ(par.sim.link_visits, ser.sim.link_visits);
  }
}

TEST_P(SimcoreEquiv, WormholeMatchesReference) {
  Rng rng(GetParam() ^ 0x3030);
  const int dims = 4 + static_cast<int>(rng.below(3));
  const Hypercube q(dims);
  std::vector<Worm> worms;
  const int count = 60;
  for (int i = 0; i < count; ++i) {
    Worm w;
    const Node s = static_cast<Node>(rng.below(q.num_nodes()));
    const Node d = static_cast<Node>(rng.below(q.num_nodes()));
    w.route = ecube_route(q, s, d);
    w.flits = 1 + static_cast<int>(rng.below(12));
    w.release = static_cast<int>(rng.below(5));
    worms.push_back(std::move(w));
  }
  RingBufferSink flat_sink, ref_sink;
  const auto flat = WormholeSim(dims).run(worms, 1 << 22, &flat_sink);
  const auto ref = RefWormholeSim(dims).run(worms, 1 << 22, &ref_sink);
  EXPECT_EQ(flat.makespan, ref.makespan);
  EXPECT_EQ(flat.completion, ref.completion);
  EXPECT_EQ(flat.total_flit_hops, ref.total_flit_hops);
  expect_same_trace(flat_sink, ref_sink);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimcoreEquiv,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u, 17u,
                                           18u, 19u, 20u));

}  // namespace
}  // namespace hyperpath
