// Property tests across the embedding constructions: invariants that must
// hold for *every* construction in the library, checked uniformly.
#include <gtest/gtest.h>

#include <functional>

#include "base/bits.hpp"
#include "core/cycle_multipath.hpp"
#include "core/grid_multipath.hpp"
#include "core/largecopy.hpp"
#include "core/transform.hpp"
#include "embed/classical.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

struct Maker {
  const char* name;
  std::function<MultiPathEmbedding()> make;
};

std::vector<Maker> all_multipath_makers() {
  return {
      {"gray cycle", [] { return gray_code_cycle_embedding(6); }},
      {"theorem1", [] { return theorem1_cycle_embedding(8); }},
      {"theorem2", [] { return theorem2_cycle_embedding(8); }},
      {"grid", [] { return grid_multipath_embedding(GridSpec{{16, 16}, true}); }},
      {"transform", [] { return theorem4_transform(multicopy_directed_cycles(4)); }},
      {"largecopy cycle", [] { return largecopy_directed_cycle(6); }},
      {"largecopy ccc", [] { return largecopy_ccc(4); }},
  };
}

TEST(EmbeddingInvariants, EveryConstructionVerifies) {
  for (const auto& m : all_multipath_makers()) {
    const auto emb = m.make();
    EXPECT_NO_THROW(emb.verify_or_throw()) << m.name;
  }
}

TEST(EmbeddingInvariants, CongestionBoundsPhaseCost) {
  // One-packet cost ≥ max(dilation among shortest paths?, and ≤ measured):
  // the simulator can never beat congestion (some link must carry that
  // many packets serially) nor the dilation of the shortest bundle path.
  for (const auto& m : all_multipath_makers()) {
    const auto emb = m.make();
    const auto r = measure_phase_cost(emb, 1);
    int min_dilation_needed = 0;
    for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
      std::size_t shortest = SIZE_MAX;
      for (const auto& p : emb.paths(e)) shortest = std::min(shortest, p.size());
      min_dilation_needed =
          std::max(min_dilation_needed, static_cast<int>(shortest) - 1);
    }
    EXPECT_GE(r.makespan, min_dilation_needed) << m.name;
  }
}

TEST(EmbeddingInvariants, PacketsDeliveredEqualsEdgeCountTimesP) {
  for (const auto& m : all_multipath_makers()) {
    const auto emb = m.make();
    for (int p : {1, 3}) {
      const auto packets = phase_packets(emb, p);
      EXPECT_EQ(packets.size(), emb.guest().num_edges() * std::size_t(p))
          << m.name;
    }
  }
}

TEST(EmbeddingInvariants, CostMonotoneInPackets) {
  for (const auto& m : all_multipath_makers()) {
    const auto emb = m.make();
    int prev = 0;
    for (int p : {1, 2, 4, 8}) {
      const int cost = measure_phase_cost(emb, p).makespan;
      EXPECT_GE(cost, prev) << m.name << " p=" << p;
      prev = cost;
    }
  }
}

TEST(EmbeddingInvariants, CongestionSumsToTotalPathEdges) {
  for (const auto& m : all_multipath_makers()) {
    const auto emb = m.make();
    std::uint64_t total_hops = 0;
    for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
      for (const auto& p : emb.paths(e)) total_hops += p.size() - 1;
    }
    std::uint64_t cong_sum = 0;
    for (auto c : emb.congestion_per_link()) cong_sum += c;
    EXPECT_EQ(cong_sum, total_hops) << m.name;
  }
}

TEST(EmbeddingInvariants, TamperingIsAlwaysCaught) {
  // Corrupt each construction in a few standard ways; verify must throw.
  for (const auto& m : all_multipath_makers()) {
    {
      auto emb = m.make();
      // Point a bundle at the wrong endpoint.
      const Edge ge = emb.guest().edge(0);
      const Node wrong = emb.host_of(ge.to) ^ 1u;
      emb.set_paths(0, {{emb.host_of(ge.from), wrong}});
      if (wrong != emb.host_of(ge.to) && is_pow2(emb.host_of(ge.from) ^ wrong)) {
        EXPECT_THROW(emb.verify_or_throw(), Error) << m.name;
      }
    }
    {
      auto emb = m.make();
      // Teleporting path (a 2-bit hop).
      const Edge ge = emb.guest().edge(0);
      const Node a = emb.host_of(ge.from);
      const Node b = emb.host_of(ge.to);
      if (emb.host().distance(a, b) == 1) {
        emb.set_paths(0, {{a, a ^ 3u, b}});
        EXPECT_THROW(emb.verify_or_throw(), Error) << m.name;
      }
    }
  }
}

TEST(EmbeddingInvariants, ExpansionAtLeastOneWhenOneToOne) {
  // Expansion < 1 is only possible for many-to-one (large-copy) embeddings,
  // whose guests are larger than the host.
  for (const auto& m : all_multipath_makers()) {
    const auto emb = m.make();
    if (emb.load() == 1) {
      EXPECT_GE(emb.expansion(), 1.0 - 1e-9) << m.name;
    } else {
      // Capacity: host nodes × load must cover the guest.
      EXPECT_GE(emb.host().num_nodes() * static_cast<std::uint64_t>(emb.load()),
                emb.guest().num_nodes())
          << m.name;
    }
  }
}

}  // namespace
}  // namespace hyperpath
