// The algebraic oracle at scale: Q_20–Q_30 hosts that can never be
// materialized, verified by the sampling contract (endpoints, host
// adjacency, declared lengths, pairwise edge-disjointness), plus the
// oracle-fed consumers — RoutePlan streaming compilation, the compact-link
// phase simulator against its analytic congestion floor, and oracle-backed
// recovery — cross-checked against the materialized pipeline where both
// exist.
#include <gtest/gtest.h>

#include "base/error.hpp"
#include "core/algebraic_oracle.hpp"
#include "core/cycle_multipath.hpp"
#include "core/lower_bounds.hpp"
#include "sim/faults.hpp"
#include "sim/oracle_sim.hpp"
#include "sim/phase.hpp"
#include "sim/recovery.hpp"
#include "sim/simcore.hpp"
#include "sim/store_forward.hpp"

namespace hyperpath {
namespace {

TEST(OracleSample, Q20Torus) {
  const auto oracle = algebraic_grid_oracle(GridSpec{{1024, 1024}, true});
  ASSERT_EQ(oracle->host_dims(), 20);
  const OracleSampleReport rep = oracle_sample_check(*oracle, 512, 2024);
  EXPECT_EQ(rep.edges_checked, 512u);
  EXPECT_GT(rep.paths_checked, rep.edges_checked);
}

TEST(OracleSample, Q24Torus) {
  const auto oracle = algebraic_grid_oracle(GridSpec{{256, 256, 256}, true});
  ASSERT_EQ(oracle->host_dims(), 24);
  const OracleSampleReport rep = oracle_sample_check(*oracle, 512, 7);
  EXPECT_EQ(rep.edges_checked, 512u);
}

TEST(OracleSample, Q30Torus) {
  const auto oracle =
      algebraic_grid_oracle(GridSpec{{256, 256, 256, 64}, true});
  ASSERT_EQ(oracle->host_dims(), 30);
  const OracleSampleReport rep = oracle_sample_check(*oracle, 256, 30);
  EXPECT_EQ(rep.edges_checked, 256u);
}

/// Streaming compilation must produce byte-for-byte the plan that
/// RoutePlan::compile builds from materialized phase packets.
TEST(OracleSample, RoutePlanStreamingMatchesCompile) {
  const MultiPathEmbedding emb = theorem1_cycle_embedding(8);
  const Hypercube& host = emb.host();
  const std::vector<Packet> packets = phase_packets(emb, 5);
  const simcore::RoutePlan compiled = simcore::RoutePlan::compile(host, packets);

  simcore::RoutePlan streamed;
  for (const Packet& p : packets) {
    streamed.begin_route(static_cast<std::uint32_t>(p.release));
    for (const Node v : p.route) streamed.push_node(v);
    streamed.end_route(host);
  }
  EXPECT_EQ(streamed.route_nodes, compiled.route_nodes);
  EXPECT_EQ(streamed.route_offsets, compiled.route_offsets);
  EXPECT_EQ(streamed.link_of_hop, compiled.link_of_hop);
  EXPECT_EQ(streamed.route_len, compiled.route_len);
  EXPECT_EQ(streamed.release, compiled.release);
}

/// end_route_unlinked validates the walk but defers link ids; offsets and
/// lengths must still line up with the linked flavor.
TEST(OracleSample, RoutePlanUnlinkedOffsets) {
  const Hypercube host(4);
  simcore::RoutePlan plan;
  plan.begin_route(0);
  for (const Node v : {0u, 1u, 3u}) plan.push_node(v);
  plan.end_route_unlinked(4);
  plan.begin_route(2);
  for (const Node v : {7u, 5u}) plan.push_node(v);
  plan.end_route_unlinked(4);
  ASSERT_EQ(plan.num_routes(), 2u);
  EXPECT_EQ(plan.route_offsets, (std::vector<std::uint32_t>{0, 2, 3}));
  EXPECT_EQ(plan.route_len, (std::vector<std::uint32_t>{2, 1}));
  EXPECT_EQ(plan.release, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(plan.nodes(0)[0], 0u);
  EXPECT_EQ(plan.nodes(1)[1], 5u);
  EXPECT_TRUE(plan.link_of_hop.empty());
}

TEST(OracleSample, RoutePlanUnlinkedRejectsBadWalk) {
  simcore::RoutePlan plan;
  plan.begin_route(0);
  plan.push_node(0);
  plan.push_node(3);  // two bits flipped: not a hypercube hop
  EXPECT_THROW(plan.end_route_unlinked(4), Error);
}

/// The compact-link phase sweep must reproduce the dense-link SoA engine's
/// measurements exactly when both can run: renumbering links is a
/// bijection, so queue dynamics are unchanged.
TEST(OracleSample, PhaseSimMatchesMaterializedPipeline) {
  const int p = 5;
  const MultiPathEmbedding emb = theorem1_cycle_embedding(8);
  const MaterializedOracle mat(emb);
  const auto alg = algebraic_theorem1_oracle(8);

  std::vector<OracleEdge> edges;
  for (OracleId g = 0; g < alg->guest_nodes(); ++g) {
    for (int s = 0; s < alg->out_degree(g); ++s) {
      edges.push_back(alg->out_edge(g, s));
    }
  }

  OraclePhaseSpec spec;
  spec.packets_per_edge = p;
  const OraclePhaseResult from_alg = run_oracle_phase(*alg, edges, spec);
  const OraclePhaseResult from_mat = run_oracle_phase(mat, edges, spec);
  EXPECT_EQ(from_alg.makespan, from_mat.makespan);
  EXPECT_EQ(from_alg.total_transmissions, from_mat.total_transmissions);
  EXPECT_EQ(from_alg.peak_congestion, from_mat.peak_congestion);
  EXPECT_EQ(from_alg.max_queue, from_mat.max_queue);
  EXPECT_EQ(from_alg.unique_links, from_mat.unique_links);
  EXPECT_EQ(from_alg.dim_transmissions, from_mat.dim_transmissions);

  // Same dynamics as the classic dense-link pipeline.
  const StoreForwardSim sim(emb.host().dims());
  const SimResult classic = sim.run(phase_packets(emb, p));
  EXPECT_EQ(from_alg.makespan, classic.makespan);
  EXPECT_EQ(from_alg.total_transmissions, classic.total_transmissions);
  EXPECT_EQ(from_alg.max_queue,
            static_cast<std::uint32_t>(classic.max_queue));
  EXPECT_EQ(from_alg.dim_transmissions, classic.dim_transmissions);
  EXPECT_EQ(from_alg.delivered,
            static_cast<std::uint64_t>(edges.size()) * p);
}

/// Q_24 end to end from the algebraic backend: every packet delivered and
/// the measured congestion at or above the analytic floor.
TEST(OracleSample, Q24PhaseRespectsCongestionFloor) {
  const auto oracle = algebraic_grid_oracle(GridSpec{{256, 256, 256}, true});
  const std::vector<OracleEdge> edges =
      sample_guest_edges(*oracle, 4000, 99);
  OraclePhaseSpec spec;
  spec.packets_per_edge = 8;
  const OraclePhaseResult r = run_oracle_phase(*oracle, edges, spec);
  const OraclePhaseFloor floor = oracle_phase_floor(*oracle, edges, 8);
  EXPECT_EQ(r.delivered, edges.size() * 8u);
  EXPECT_GE(static_cast<std::int64_t>(r.peak_congestion), floor.floor);
  EXPECT_GE(r.makespan, 1);
  // Memory ∝ traffic, not host: the plan can never exceed a few nodes and
  // links per hop of demand, where the dense Q_24 link array alone would
  // hold 400M entries.
  EXPECT_LE(r.unique_links, static_cast<std::uint64_t>(edges.size()) * 8 * 4);
}

/// Oracle-backed recovery must be bit-identical to the embedding overload
/// when the demanded edges cover every guest edge in id order.
TEST(OracleSample, RecoveryMatchesEmbeddingBackend) {
  const MultiPathEmbedding emb = theorem1_cycle_embedding(8);
  const MaterializedOracle mat(emb);

  std::vector<OracleEdge> edges;
  for (OracleId g = 0; g < mat.guest_nodes(); ++g) {
    for (int s = 0; s < mat.out_degree(g); ++s) {
      edges.push_back(mat.out_edge(g, s));
    }
  }
  ASSERT_EQ(edges.size(), mat.guest_edges());

  FaultSchedule schedule(emb.host().dims());
  schedule.link_down(1, 0, 1);
  schedule.link_down(2, 112, 114);
  schedule.transient_link(0, 6, 48, 50);

  RecoveryConfig config;
  config.timeout = 4;
  config.max_retries = 3;
  config.threshold = 0;
  config.update_registry = false;

  const RecoveryResult a = run_recovery(emb, schedule, config);
  const RecoveryResult b = run_recovery(mat, edges, schedule, config);
  EXPECT_EQ(a.messages_total, b.messages_total);
  EXPECT_EQ(a.messages_complete, b.messages_complete);
  EXPECT_EQ(a.messages_recovered, b.messages_recovered);
  EXPECT_EQ(a.fragments_sent, b.fragments_sent);
  EXPECT_EQ(a.fragments_delivered, b.fragments_delivered);
  EXPECT_EQ(a.fragments_lost, b.fragments_lost);
  EXPECT_EQ(a.fragments_exhausted, b.fragments_exhausted);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.waves, b.waves);
  EXPECT_EQ(a.total_transmissions, b.total_transmissions);
  EXPECT_EQ(a.useful_transmissions, b.useful_transmissions);
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t m = 0; m < a.messages.size(); ++m) {
    EXPECT_EQ(a.messages[m].complete, b.messages[m].complete) << m;
    EXPECT_EQ(a.messages[m].complete_step, b.messages[m].complete_step) << m;
    EXPECT_EQ(a.messages[m].first_loss_step, b.messages[m].first_loss_step)
        << m;
    EXPECT_EQ(a.messages[m].fragments_delivered,
              b.messages[m].fragments_delivered)
        << m;
    EXPECT_EQ(a.messages[m].retransmissions, b.messages[m].retransmissions)
        << m;
  }
}

/// Oracle recovery on a host too big to materialize: a handful of messages
/// ride Q_24 bundles through a fault on one of their own links.
TEST(OracleSample, Q24RecoverySurvivesSingleFault) {
  const auto oracle = algebraic_grid_oracle(GridSpec{{256, 256, 256}, true});
  const std::vector<OracleEdge> edges = sample_guest_edges(*oracle, 16, 5);

  // Kill the first link of edge 0's first bundle path; IDA threshold w-1
  // means every message still completes (§9 single-fault claim).
  const std::vector<HostPath> bundle = oracle->bundle(edges[0]);
  FaultSchedule schedule(oracle->host_dims());
  schedule.link_down(0, bundle[0][0], bundle[0][1]);

  RecoveryConfig config;
  config.timeout = 4;
  config.threshold = static_cast<int>(bundle.size()) - 1;
  config.update_registry = false;

  const RecoveryResult r = run_recovery(*oracle, edges, schedule, config);
  EXPECT_EQ(r.messages_total, edges.size());
  EXPECT_EQ(r.messages_complete, edges.size());
}

}  // namespace
}  // namespace hyperpath
