// Property tests for the simulators: conservation laws and model
// consistency under randomized workloads.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "sim/store_forward.hpp"
#include "sim/workloads.hpp"
#include "sim/wormhole.hpp"

namespace hyperpath {
namespace {

std::vector<Packet> random_packets(int dims, int count, Rng& rng) {
  const Hypercube q(dims);
  std::vector<Packet> out;
  for (int i = 0; i < count; ++i) {
    Packet p;
    const Node s = static_cast<Node>(rng.below(q.num_nodes()));
    const Node d = static_cast<Node>(rng.below(q.num_nodes()));
    p.route = ecube_route(q, s, d);
    p.release = static_cast<int>(rng.below(4));
    out.push_back(std::move(p));
  }
  return out;
}

class SimProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimProperty, TransmissionsEqualTotalRouteLength) {
  Rng rng(GetParam());
  const int dims = 3 + static_cast<int>(rng.below(4));
  const auto packets = random_packets(dims, 100, rng);
  std::uint64_t expected = 0;
  for (const auto& p : packets) expected += p.route.size() - 1;
  for (auto policy : {Arbitration::kFifo, Arbitration::kFarthestFirst}) {
    const auto r = StoreForwardSim(dims).run(packets, policy);
    EXPECT_EQ(r.total_transmissions, expected);
  }
}

TEST_P(SimProperty, UtilizationBoundedAndConsistent) {
  Rng rng(GetParam() ^ 0xABCD);
  const int dims = 4;
  const auto packets = random_packets(dims, 80, rng);
  const auto r = StoreForwardSim(dims).run(packets);
  const double links = static_cast<double>(Hypercube(dims).num_directed_edges());
  for (double u : r.utilization.profile()) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  // The exact running mean times steps must recover total transmissions.
  EXPECT_NEAR(r.average_utilization() * links *
                  static_cast<double>(r.utilization.steps()),
              static_cast<double>(r.total_transmissions), 1e-6);
  EXPECT_EQ(static_cast<int>(r.utilization.steps()), r.makespan);
}

TEST_P(SimProperty, MakespanAtLeastLongestRouteAndRelease) {
  Rng rng(GetParam() ^ 0x1234);
  const int dims = 5;
  const auto packets = random_packets(dims, 60, rng);
  int lower = 0;
  for (const auto& p : packets) {
    if (p.route.size() > 1) {
      lower = std::max(lower, p.release +
                                  static_cast<int>(p.route.size()) - 1);
    }
  }
  const auto r = StoreForwardSim(dims).run(packets);
  EXPECT_GE(r.makespan, lower);
}

TEST_P(SimProperty, WormholeUnblockedIsExactlyLPlusMMinus1) {
  Rng rng(GetParam() ^ 0x77);
  const int dims = 5;
  const Hypercube q(dims);
  // A single worm is never blocked.
  const Node s = static_cast<Node>(rng.below(q.num_nodes()));
  Node d = static_cast<Node>(rng.below(q.num_nodes()));
  if (d == s) d = s ^ 1u;
  Worm w;
  w.route = ecube_route(q, s, d);
  w.flits = 1 + static_cast<int>(rng.below(50));
  const auto r = WormholeSim(dims).run({w});
  EXPECT_EQ(r.makespan,
            static_cast<int>(w.route.size()) - 1 + w.flits - 1);
}

TEST_P(SimProperty, WormholeNeverBeatsContentionFreeBound) {
  // Every worm's completion ≥ release + L + M − 1.
  Rng rng(GetParam() ^ 0x99);
  const int dims = 4;
  const Hypercube q(dims);
  std::vector<Worm> worms;
  for (int i = 0; i < 20; ++i) {
    Worm w;
    const Node s = static_cast<Node>(rng.below(q.num_nodes()));
    const Node d = static_cast<Node>(rng.below(q.num_nodes()));
    w.route = ecube_route(q, s, d);
    w.flits = 1 + static_cast<int>(rng.below(8));
    w.release = static_cast<int>(rng.below(3));
    worms.push_back(std::move(w));
  }
  const auto r = WormholeSim(dims).run(worms);
  for (std::size_t i = 0; i < worms.size(); ++i) {
    if (worms[i].route.size() <= 1) continue;
    EXPECT_GE(r.completion[i],
              worms[i].release + static_cast<int>(worms[i].route.size()) - 1 +
                  worms[i].flits - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace hyperpath
