// Deep sweeps that exercise the closed forms and constructions at sizes
// where table-driven shortcuts or 32-bit arithmetic would betray bugs.
#include <gtest/gtest.h>

#include <set>

#include "base/bits.hpp"
#include "base/gray.hpp"
#include "base/moment.hpp"
#include "base/rng.hpp"
#include "ccc/ccc_embed.hpp"
#include "hamdecomp/solver.hpp"
#include "hamdecomp/tables.hpp"

namespace hyperpath {
namespace {

TEST(DeepSweep, GrayClosedFormAtK20) {
  const int k = 20;
  Rng rng(61);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t i = rng.below(pow2(k));
    const Node v = gray_node_at(k, i);
    EXPECT_EQ(gray_rank(k, v), i);
    // Adjacent ranks differ in exactly the transition dimension.
    const std::uint64_t j = (i + 1) % pow2(k);
    EXPECT_EQ(v ^ gray_node_at(k, j), bit(gray_transition_at(k, i)));
  }
}

TEST(DeepSweep, MomentLemma2SampledAtN24) {
  Rng rng(62);
  for (int trial = 0; trial < 500; ++trial) {
    const Node u = static_cast<Node>(rng.below(pow2(24)));
    std::set<Node> seen;
    for (Dim d = 0; d < 24; ++d) {
      EXPECT_TRUE(seen.insert(moment(flip_bit(u, d))).second);
    }
  }
}

TEST(DeepSweep, CccSpecsAtN16) {
  // Theorem 3's windows/signatures for n = 16 (r = 4): all 16 specs are
  // well-formed and pairwise satisfy Observations 4/5 — without building
  // the (16·65536-node) embedding itself.
  const int n = 16, r = 4;
  std::vector<CccEmbedSpec> specs;
  for (int k = 0; k < n; ++k) {
    specs.push_back(ccc_multicopy_spec(n, k));
    EXPECT_NO_THROW(specs.back().verify_or_throw());
    EXPECT_EQ(specs.back().w[0], 1);
  }
  for (int k1 = 0; k1 < n; ++k1) {
    for (int k2 = k1 + 1; k2 < n; ++k2) {
      EXPECT_EQ(common_prefix_len(specs[k1].w, specs[k2].w),
                common_prefix_len(static_cast<Node>(k1),
                                  static_cast<Node>(k2), r) +
                    1);
      for (int l = 0; l < n; l += 3) {
        EXPECT_EQ(common_prefix_len_lsb(specs[k1].ham[l], specs[k2].ham[l], r),
                  common_prefix_len(static_cast<Node>(k1),
                                    static_cast<Node>(k2), r));
      }
    }
  }
}

TEST(DeepSweep, SolverStressAcrossSeeds) {
  // The constructive solver must succeed for every seed — retries are
  // internal, so a return is always a verified decomposition.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    EXPECT_NO_THROW(solve_even_decomposition(8, seed).verify_or_throw());
  }
  EXPECT_NO_THROW(solve_even_decomposition(10, 4242).verify_or_throw());
}

TEST(DeepSweep, TablesMatchSolverStructure) {
  // Table entries decode, verify, and have the advertised shape.
  for (int dims : {4, 6, 8, 10, 12, 14}) {
    const auto entry = table_decomposition(dims);
    ASSERT_TRUE(entry.has_value()) << dims;
    EXPECT_EQ(entry->dims, dims);
    EXPECT_EQ(entry->cycles.size(), static_cast<std::size_t>(dims / 2));
    EXPECT_NO_THROW(entry->verify_or_throw());
  }
  EXPECT_FALSE(table_decomposition(16).has_value());
  EXPECT_FALSE(table_decomposition(5).has_value());
}

TEST(DeepSweep, TransitionCodecRoundTrip) {
  const auto& d = hamiltonian_decomposition(8);
  for (const auto& cyc : d.cycles) {
    // Rotate to start at the cycle's own first node and round-trip.
    const std::string enc = encode_cycle_transitions(cyc);
    EXPECT_EQ(decode_cycle_transitions(enc, cyc.front()), cyc);
  }
}

}  // namespace
}  // namespace hyperpath
