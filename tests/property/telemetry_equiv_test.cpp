// Determinism contract of the telemetry bus (obs/telemetry.hpp): turning
// sampling on, at ANY period and thread count, must leave simulation
// results and trace streams bit-identical to a run with telemetry off.
// The sampler rides the step counter and only reads simulator state, so
// this holds by construction — these tests are the license to keep the
// sampling hooks inside the hot loops.  Periods {1, 7, 64} cover every
// step, a period coprime to the workload's natural cadence, and the
// default; thread counts {1, 2, 8} cover the serial path and both light
// and oversubscribed sharding.
#include <gtest/gtest.h>

#include <vector>

#include "base/rng.hpp"
#include "core/cycle_multipath.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/faults.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/phase.hpp"
#include "sim/store_forward.hpp"
#include "sim/workloads.hpp"

namespace hyperpath {
namespace {

using obs::RingBufferSink;
using obs::TelemetryBus;

const int kPeriods[] = {1, 7, 64};
const int kThreadCounts[] = {1, 2, 8};

void expect_same_result(const SimResult& a, const SimResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.total_transmissions, b.total_transmissions) << label;
  EXPECT_EQ(a.utilization, b.utilization) << label;
  EXPECT_EQ(a.max_queue, b.max_queue) << label;
  EXPECT_EQ(a.dim_transmissions, b.dim_transmissions) << label;
  EXPECT_EQ(a.latency, b.latency) << label;
  EXPECT_EQ(a.link_visits, b.link_visits) << label;
}

void expect_same_trace(const RingBufferSink& a, const RingBufferSink& b,
                       const std::string& label) {
  ASSERT_EQ(a.total(), b.total()) << label;
  ASSERT_EQ(a.dropped(), 0u) << label;
  EXPECT_EQ(a.events(), b.events()) << label;
}

/// Mixed workload: a Theorem 1 phase plus staggered random e-cube traffic,
/// so runs are long enough that every tested period actually fires.
std::vector<Packet> workload(int* dims_out) {
  const auto emb = theorem1_cycle_embedding(8);
  *dims_out = emb.host().dims();
  std::vector<Packet> packets = phase_packets(emb, 4);
  Rng rng(2026);
  const Hypercube q(*dims_out);
  for (int i = 0; i < 400; ++i) {
    Packet p;
    const Node s = static_cast<Node>(rng.below(q.num_nodes()));
    const Node d = static_cast<Node>(rng.below(q.num_nodes()));
    p.route = ecube_route(q, s, d);
    p.release = static_cast<int>(rng.below(12));
    packets.push_back(std::move(p));
  }
  return packets;
}

TEST(TelemetryEquivalence, ResultsAndTracesBitIdenticalAcrossPeriods) {
  int dims = 0;
  const auto packets = workload(&dims);
  TelemetryBus& bus = TelemetryBus::global();
  bus.disable();

  for (int threads : kThreadCounts) {
    // Baseline with telemetry off.
    RingBufferSink base_sink;
    SimResult base;
    if (threads == 1) {
      base = StoreForwardSim(dims).run(packets, Arbitration::kFifo, 1 << 22,
                                       &base_sink);
    } else {
      base = ParallelStoreForwardSim(dims, threads)
                 .run(packets, 1 << 22, &base_sink);
    }

    for (int period : kPeriods) {
      const std::string label =
          "threads=" + std::to_string(threads) +
          " period=" + std::to_string(period);
      TelemetryBus::Config cfg;
      cfg.period_steps = period;
      bus.enable(cfg);
      RingBufferSink sink;
      SimResult got;
      if (threads == 1) {
        got = StoreForwardSim(dims).run(packets, Arbitration::kFifo, 1 << 22,
                                        &sink);
      } else {
        got = ParallelStoreForwardSim(dims, threads)
                  .run(packets, 1 << 22, &sink);
      }
      const std::uint64_t samples = bus.total_samples();
      bus.disable();

      expect_same_result(got, base, label);
      expect_same_trace(sink, base_sink, label);
      // The run must actually have been observed: one sample per period
      // boundary reached, starting at step 0.
      EXPECT_EQ(samples,
                static_cast<std::uint64_t>((base.makespan + period - 1) /
                                           period))
          << label;
    }
  }
}

TEST(TelemetryEquivalence, FaultReplayUnchangedByTelemetry) {
  int dims = 0;
  const auto packets = workload(&dims);
  FaultSchedule sched(dims);
  const Hypercube q(dims);
  sched.link_down(1, 0, q.neighbor(0, 0));
  sched.transient_link(2, 9, 5, q.neighbor(5, 1));
  sched.node_down(4, 17);
  sched.transient_node(3, 8, 33);

  TelemetryBus& bus = TelemetryBus::global();
  bus.disable();
  RingBufferSink base_sink;
  const FaultRunResult base = StoreForwardSim(dims).run_with_faults(
      packets, sched, Arbitration::kFifo, 1 << 22, &base_sink);

  for (int period : kPeriods) {
    const std::string label = "period=" + std::to_string(period);
    TelemetryBus::Config cfg;
    cfg.period_steps = period;
    bus.enable(cfg);
    RingBufferSink sink;
    const FaultRunResult got = StoreForwardSim(dims).run_with_faults(
        packets, sched, Arbitration::kFifo, 1 << 22, &sink);
    bus.disable();

    expect_same_result(got.sim, base.sim, label);
    EXPECT_EQ(got.fates, base.fates) << label;
    EXPECT_EQ(got.delivered, base.delivered) << label;
    EXPECT_EQ(got.lost, base.lost) << label;
    expect_same_trace(sink, base_sink, label);
  }

  // And the parallel fault path, telemetry on at every step.
  for (int threads : {2, 8}) {
    const std::string label = "par threads=" + std::to_string(threads);
    TelemetryBus::Config cfg;
    cfg.period_steps = 1;
    bus.enable(cfg);
    RingBufferSink sink;
    const FaultRunResult got = ParallelStoreForwardSim(dims, threads)
                                   .run_with_faults(packets, sched, 1 << 22,
                                                    &sink);
    bus.disable();
    expect_same_result(got.sim, base.sim, label);
    EXPECT_EQ(got.fates, base.fates) << label;
    expect_same_trace(sink, base_sink, label);
  }
}

}  // namespace
}  // namespace hyperpath
