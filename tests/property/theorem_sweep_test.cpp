// Large-dimension sweeps of the headline theorems — the claims must hold at
// the largest hosts the test budget allows (Q_16/Q_17: 65k–131k nodes),
// not just the toy sizes.
#include <gtest/gtest.h>

#include "base/bits.hpp"
#include "core/cycle_multipath.hpp"
#include "core/largecopy.hpp"
#include "hamdecomp/directed.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

TEST(LargeSweep, Theorem1AtQ16) {
  const int n = 16;
  const auto emb = theorem1_cycle_embedding(n);
  EXPECT_EQ(emb.guest().num_nodes(), pow2(n));
  EXPECT_EQ(emb.width(), 9);
  EXPECT_EQ(emb.load(), 1);
  EXPECT_EQ(measure_phase_cost(emb, n / 2).makespan, 3);
}

TEST(LargeSweep, Theorem2AtQ16FullUtilization) {
  const int n = 16;
  const auto emb = theorem2_cycle_embedding(n);
  EXPECT_EQ(emb.width(), 8);
  const auto r = measure_phase_cost(emb, 8);
  EXPECT_EQ(r.makespan, 3);
  for (double u : r.utilization.profile()) EXPECT_DOUBLE_EQ(u, 1.0);
}

TEST(LargeSweep, Theorem1AtQ17) {
  const int n = 17;
  const auto emb = theorem1_cycle_embedding(n);
  EXPECT_EQ(emb.width(), 9);
  EXPECT_EQ(measure_phase_cost(emb, n / 2).makespan, 3);
}

TEST(LargeSweep, Lemma1AtQ14) {
  DirectedCycleFamily fam(14);
  EXPECT_EQ(fam.num_cycles(), 14);
  fam.verify_or_throw();
}

TEST(LargeSweep, Lemma1AtQ15ViaSplice) {
  DirectedCycleFamily fam(15);
  EXPECT_EQ(fam.num_cycles(), 14);
  fam.verify_or_throw();
}

TEST(LargeSweep, LargeCopyCycleAtQ12) {
  const auto emb = largecopy_directed_cycle(12);
  EXPECT_EQ(emb.guest().num_nodes(), 12u * 4096u);
  EXPECT_EQ(emb.congestion(), 1);
  for (auto c : emb.congestion_per_link()) EXPECT_EQ(c, 1u);
}

}  // namespace
}  // namespace hyperpath
