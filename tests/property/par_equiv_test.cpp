// Bit-identical-parallelism properties: every construction, metric sweep,
// and verification in the library must produce exactly the same output —
// node maps, bundles, metric values, per-link congestion vectors, and even
// the error thrown on corrupted input — for every pool size.  This is the
// par analogue of simcore_equiv_test: serial (threads=1) is the reference,
// thread counts {2, 3, 5, 8} must match it field by field.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "base/rng.hpp"
#include "core/cycle_multipath.hpp"
#include "core/grid_multipath.hpp"
#include "core/largecopy.hpp"
#include "core/tree_multipath.hpp"
#include "graph/builders.hpp"
#include "par/task_pool.hpp"

namespace hyperpath {
namespace {

const int kParallelCounts[] = {2, 3, 5, 8};

void expect_identical(const MultiPathEmbedding& a, const MultiPathEmbedding& b,
                      const std::string& label) {
  ASSERT_EQ(a.guest().num_nodes(), b.guest().num_nodes()) << label;
  ASSERT_EQ(a.guest().num_edges(), b.guest().num_edges()) << label;
  for (Node v = 0; v < a.guest().num_nodes(); ++v) {
    ASSERT_EQ(a.host_of(v), b.host_of(v)) << label << " node " << v;
  }
  for (std::size_t e = 0; e < a.guest().num_edges(); ++e) {
    const auto pa = a.paths(e);
    const auto pb = b.paths(e);
    ASSERT_EQ(pa.size(), pb.size()) << label << " edge " << e;
    for (std::size_t j = 0; j < pa.size(); ++j) {
      ASSERT_EQ(pa[j], pb[j]) << label << " edge " << e << " path " << j;
    }
  }
}

void expect_identical(const KCopyEmbedding& a, const KCopyEmbedding& b,
                      const std::string& label) {
  ASSERT_EQ(a.num_copies(), b.num_copies()) << label;
  for (int c = 0; c < a.num_copies(); ++c) {
    for (Node v = 0; v < a.guest().num_nodes(); ++v) {
      ASSERT_EQ(a.host_of(c, v), b.host_of(c, v)) << label << " copy " << c;
    }
    for (std::size_t e = 0; e < a.guest().num_edges(); ++e) {
      ASSERT_EQ(a.path(c, e), b.path(c, e))
          << label << " copy " << c << " edge " << e;
    }
  }
}

TEST(ParEquivalence, ConstructionsMatchSerialForEveryThreadCount) {
  struct Maker {
    const char* name;
    std::function<MultiPathEmbedding()> make;
  };
  const std::vector<Maker> makers = {
      {"theorem1", [] { return theorem1_cycle_embedding(8); }},
      {"theorem2", [] { return theorem2_cycle_embedding(8); }},
      {"grid",
       [] { return grid_multipath_embedding(GridSpec{{16, 16}, true}); }},
      {"largecopy_directed", [] { return largecopy_directed_cycle(6); }},
      {"largecopy_butterfly", [] { return largecopy_butterfly(4); }},
  };
  for (const auto& m : makers) {
    par::TaskPool serial_pool(1);
    const MultiPathEmbedding reference = [&] {
      par::PoolScope scope(serial_pool);
      return m.make();
    }();
    for (int t : kParallelCounts) {
      par::TaskPool pool(t);
      par::PoolScope scope(pool);
      const MultiPathEmbedding got = m.make();
      expect_identical(reference, got,
                       std::string(m.name) + " threads=" + std::to_string(t));
    }
  }
}

TEST(ParEquivalence, KCopyConstructionsMatchSerial) {
  struct Maker {
    const char* name;
    std::function<KCopyEmbedding()> make;
  };
  const std::vector<Maker> makers = {
      {"butterfly_multicopy", [] { return butterfly_multicopy_embedding(4); }},
      {"multicopy_torus",
       [] { return multicopy_torus(GridSpec{{8, 8}, true}); }},
  };
  for (const auto& m : makers) {
    par::TaskPool serial_pool(1);
    const KCopyEmbedding reference = [&] {
      par::PoolScope scope(serial_pool);
      return m.make();
    }();
    for (int t : kParallelCounts) {
      par::TaskPool pool(t);
      par::PoolScope scope(pool);
      const KCopyEmbedding got = m.make();
      expect_identical(reference, got,
                       std::string(m.name) + " threads=" + std::to_string(t));
    }
  }
}

/// A randomized multipath embedding: random η plus e-cube-style walks (fix
/// differing bits lowest-first) with a random detour prefix, so bundles
/// have varied lengths and genuine congestion overlaps.
MultiPathEmbedding random_embedding(int n, Node guest_nodes,
                                    std::uint64_t seed) {
  Rng rng(seed);
  const Node host_nodes = static_cast<Node>(std::uint64_t{1} << n);
  DigraphBuilder b(guest_nodes);
  for (Node v = 0; v < guest_nodes; ++v) {
    b.add_edge(v, static_cast<Node>((v + 1) % guest_nodes));
    // One chord per node, offset in [2, guest_nodes-1]: never a self-loop,
    // never a duplicate of the cycle edge.
    const Node offset = static_cast<Node>(2 + rng.below(guest_nodes - 2));
    b.add_edge(v, static_cast<Node>((v + offset) % guest_nodes));
  }
  MultiPathEmbedding emb(std::move(b).build(), n);

  // Injective η (a prefix of a random permutation of the host), so the
  // load precondition always holds and verification reaches the path
  // checks.
  const auto perm = rng.permutation(static_cast<std::uint32_t>(host_nodes));
  std::vector<Node> eta(perm.begin(), perm.begin() + guest_nodes);
  emb.set_node_map(eta);

  const auto ecube_walk = [&](Node from, Node to) {
    HostPath p{from};
    Node at = from;
    for (int d = 0; d < n; ++d) {
      if (((at ^ to) >> d) & 1) {
        at = flip_bit(at, d);
        p.push_back(at);
      }
    }
    return p;
  };
  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    const Edge& ge = emb.guest().edge(e);
    Node from = eta[ge.from];
    const Node to = eta[ge.to];
    HostPath p{from};
    // Random detour: walk up to 2 random fresh dimensions first.
    const int detours = static_cast<int>(rng.below(3));
    for (int i = 0; i < detours; ++i) {
      const Dim d = static_cast<Dim>(rng.below(static_cast<std::uint64_t>(n)));
      from = flip_bit(from, d);
      p.push_back(from);
    }
    const HostPath tail = ecube_walk(from, to);
    p.insert(p.end(), tail.begin() + 1, tail.end());
    emb.set_paths(e, {std::move(p)});
  }
  return emb;
}

TEST(ParEquivalence, RandomEmbeddingMetricsBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const MultiPathEmbedding emb = random_embedding(10, 700, seed);
    par::TaskPool serial_pool(1);
    const EmbeddingMetrics reference = [&] {
      par::PoolScope scope(serial_pool);
      return emb.metrics();
    }();
    for (int t : kParallelCounts) {
      par::TaskPool pool(t);
      par::PoolScope scope(pool);
      const EmbeddingMetrics got = emb.metrics();
      EXPECT_EQ(reference.load, got.load) << "threads=" << t;
      EXPECT_EQ(reference.dilation, got.dilation) << "threads=" << t;
      EXPECT_EQ(reference.width, got.width) << "threads=" << t;
      EXPECT_EQ(reference.congestion, got.congestion) << "threads=" << t;
      EXPECT_EQ(reference.congestion_per_link, got.congestion_per_link)
          << "threads=" << t;
    }
  }
}

TEST(ParEquivalence, MetricsAgreeWithSingleMetricAccessors) {
  const MultiPathEmbedding emb = random_embedding(9, 300, 42);
  const EmbeddingMetrics m = emb.metrics();
  EXPECT_EQ(m.load, emb.load());
  EXPECT_EQ(m.dilation, emb.dilation());
  EXPECT_EQ(m.width, emb.width());
  EXPECT_EQ(m.congestion, emb.congestion());
  EXPECT_EQ(m.congestion_per_link, emb.congestion_per_link());
}

TEST(ParEquivalence, VerifyErrorDeterministicOnCorruptedBundle) {
  // Corrupt two different edges two different ways: every thread count must
  // report the *first* failing edge's error, exactly like a serial scan.
  MultiPathEmbedding emb = random_embedding(8, 200, 7);
  const std::size_t hi_edge = emb.guest().num_edges() - 1;
  const Edge& ge_hi = emb.guest().edge(hi_edge);
  // High edge: wrong start node (detected by "does not start at η(u)").
  emb.set_paths(hi_edge,
                {{flip_bit(emb.host_of(ge_hi.from), 0),
                  emb.host_of(ge_hi.from)}});
  const std::size_t lo_edge = 3;
  // Low edge: empty... cannot set empty bundle; use a non-walk instead.
  const Edge& ge_lo = emb.guest().edge(lo_edge);
  emb.set_paths(lo_edge, {{emb.host_of(ge_lo.from),
                           flip_bit(flip_bit(emb.host_of(ge_lo.from), 0), 1)}});

  std::string serial_msg;
  {
    par::TaskPool pool(1);
    par::PoolScope scope(pool);
    try {
      emb.verify_or_throw();
      FAIL() << "corrupted embedding verified";
    } catch (const Error& e) {
      serial_msg = e.what();
    }
  }
  EXPECT_NE(serial_msg.find("image path is not a hypercube walk"),
            std::string::npos);
  for (int t : kParallelCounts) {
    par::TaskPool pool(t);
    par::PoolScope scope(pool);
    for (int repeat = 0; repeat < 3; ++repeat) {
      try {
        emb.verify_or_throw();
        FAIL() << "corrupted embedding verified, threads=" << t;
      } catch (const Error& e) {
        EXPECT_EQ(serial_msg, e.what()) << "threads=" << t;
      }
    }
  }
}

TEST(ParEquivalence, VerifyAcceptsEveryConstructionUnderEveryPool) {
  const MultiPathEmbedding emb = theorem1_cycle_embedding(8);
  for (int t : kParallelCounts) {
    par::TaskPool pool(t);
    par::PoolScope scope(pool);
    EXPECT_NO_THROW(emb.verify_or_throw(5, 1)) << "threads=" << t;
  }
}

}  // namespace
}  // namespace hyperpath
