#include "hamdecomp/solver.hpp"

#include <gtest/gtest.h>

#include <set>

#include "base/bits.hpp"
#include "base/error.hpp"

namespace hyperpath {
namespace {

TEST(CubeSubgraph, FullGraphDegrees) {
  CubeSubgraph g(4, true);
  EXPECT_EQ(g.num_nodes(), 16u);
  for (Node v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(CubeSubgraph, RemoveAddSymmetric) {
  CubeSubgraph g(3, true);
  g.remove_edge(0b000, 1);
  EXPECT_FALSE(g.has_edge(0b000, 1));
  EXPECT_FALSE(g.has_edge(0b010, 1));
  EXPECT_EQ(g.degree(0), 2);
  g.add_edge(0b010, 1);
  EXPECT_TRUE(g.has_edge(0b000, 1));
  EXPECT_THROW(g.add_edge(0, 1), Error);
  EXPECT_THROW(g.remove_edge(7, 5), Error);
}

void expect_hamiltonian(int dims, const std::vector<Node>& cycle) {
  ASSERT_EQ(cycle.size(), pow2(dims));
  std::set<Node> seen(cycle.begin(), cycle.end());
  EXPECT_EQ(seen.size(), cycle.size());
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    EXPECT_TRUE(is_pow2(cycle[i] ^ cycle[(i + 1) % cycle.size()]));
  }
}

TEST(Posa, FindsCycleInFullCube) {
  for (int dims : {2, 3, 4, 5, 6, 8}) {
    CubeSubgraph g(dims, true);
    Rng rng(1234 + dims);
    const auto cycle = find_hamiltonian_cycle(g, rng, 400 * pow2(dims));
    ASSERT_TRUE(cycle.has_value()) << "dims=" << dims;
    expect_hamiltonian(dims, *cycle);
  }
}

TEST(Posa, DoesNotUseRemovedEdges) {
  CubeSubgraph g(5, true);
  // Remove a random-ish matching in dimension 0 to constrain the search.
  for (Node v = 0; v < 32; v += 2) {
    if (!test_bit(v, 0) && (v % 8) == 0) g.remove_edge(v, 0);
  }
  Rng rng(7);
  const auto cycle = find_hamiltonian_cycle(g, rng, 400 * 32);
  ASSERT_TRUE(cycle.has_value());
  for (std::size_t i = 0; i < cycle->size(); ++i) {
    const Node a = (*cycle)[i];
    const Node b = (*cycle)[(i + 1) % cycle->size()];
    EXPECT_TRUE(g.has_edge(a, count_trailing_zeros(a ^ b)));
  }
}

TEST(Split, FourRegularQ4SplitsIntoTwoHamiltonianCycles) {
  CubeSubgraph g(4, true);  // Q_4 itself is 4-regular
  Rng rng(99);
  const auto pair = split_four_regular(g, rng, 400 * 16);
  ASSERT_TRUE(pair.has_value());
  expect_hamiltonian(4, pair->first);
  expect_hamiltonian(4, pair->second);
  // Edge-disjoint: 16 + 16 = 32 = |E(Q_4)| distinct undirected edges.
  std::set<std::pair<Node, Node>> edges;
  for (const auto* cyc : {&pair->first, &pair->second}) {
    for (std::size_t i = 0; i < cyc->size(); ++i) {
      Node a = (*cyc)[i], b = (*cyc)[(i + 1) % cyc->size()];
      if (a > b) std::swap(a, b);
      EXPECT_TRUE(edges.emplace(a, b).second);
    }
  }
  EXPECT_EQ(edges.size(), 32u);
}

TEST(Split, RejectsNonFourRegular) {
  CubeSubgraph g(3, true);  // 3-regular
  Rng rng(1);
  EXPECT_THROW(split_four_regular(g, rng, 100), Error);
}

class SolveEven : public ::testing::TestWithParam<int> {};

TEST_P(SolveEven, ProducesVerifiedDecomposition) {
  const int dims = GetParam();
  const HamDecomposition d = solve_even_decomposition(dims, 0xABCDEF);
  EXPECT_EQ(d.dims, dims);
  EXPECT_NO_THROW(d.verify_or_throw());
}

INSTANTIATE_TEST_SUITE_P(SmallEvenCubes, SolveEven,
                         ::testing::Values(2, 4, 6, 8));

TEST(SolveEven, DifferentSeedsBothValid) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    EXPECT_NO_THROW(solve_even_decomposition(6, seed).verify_or_throw());
  }
}

TEST(SolveEven, RejectsOddDims) {
  EXPECT_THROW(solve_even_decomposition(5, 1), Error);
}

}  // namespace
}  // namespace hyperpath
