#include "hamdecomp/decomposition.hpp"

#include <gtest/gtest.h>

#include "base/bits.hpp"
#include "base/error.hpp"

namespace hyperpath {
namespace {

TEST(HamDecomposition, Q1IsJustTheMatching) {
  const auto& d = hamiltonian_decomposition(1);
  EXPECT_EQ(d.dims, 1);
  EXPECT_TRUE(d.cycles.empty());
  ASSERT_EQ(d.matching.size(), 1u);
}

TEST(HamDecomposition, Q2IsOneCycle) {
  const auto& d = hamiltonian_decomposition(2);
  ASSERT_EQ(d.cycles.size(), 1u);
  EXPECT_EQ(d.cycles[0].size(), 4u);
  EXPECT_TRUE(d.matching.empty());
}

// Alspach–Bermond–Sotteau: Q_{2k} → k Hamiltonian cycles; Q_{2k+1} → k
// cycles + a perfect matching.  verify_or_throw() checks Hamiltonicity,
// edge-disjointness, full coverage, and matching perfectness.
class HamDecompositionAll : public ::testing::TestWithParam<int> {};

TEST_P(HamDecompositionAll, IsValidDecomposition) {
  const int n = GetParam();
  const auto& d = hamiltonian_decomposition(n);
  EXPECT_EQ(d.dims, n);
  EXPECT_EQ(d.cycles.size(), static_cast<std::size_t>(n / 2));
  if (n % 2 == 0) {
    EXPECT_TRUE(d.matching.empty());
  } else {
    EXPECT_EQ(d.matching.size(), pow2(n - 1));
  }
  EXPECT_NO_THROW(d.verify_or_throw());
}

INSTANTIATE_TEST_SUITE_P(UpToQ9, HamDecompositionAll,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9));

TEST(HamDecomposition, CachedInstanceIsStable) {
  const auto& a = hamiltonian_decomposition(6);
  const auto& b = hamiltonian_decomposition(6);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(HamDecomposition, VerifyCatchesMissingEdgeCoverage) {
  HamDecomposition d = hamiltonian_decomposition(4);
  d.cycles.pop_back();
  EXPECT_THROW(d.verify_or_throw(), Error);
}

TEST(HamDecomposition, VerifyCatchesDuplicatedCycle) {
  HamDecomposition d = hamiltonian_decomposition(4);
  d.cycles[1] = d.cycles[0];
  EXPECT_THROW(d.verify_or_throw(), Error);
}

TEST(HamDecomposition, VerifyCatchesNonHamiltonianCycle) {
  HamDecomposition d = hamiltonian_decomposition(4);
  d.cycles[0][3] = d.cycles[0][0];  // revisit
  EXPECT_THROW(d.verify_or_throw(), Error);
}

TEST(HamDecomposition, VerifyCatchesBrokenMatching) {
  HamDecomposition d = hamiltonian_decomposition(3);
  ASSERT_FALSE(d.matching.empty());
  d.matching[0] = d.matching[1];
  EXPECT_THROW(d.verify_or_throw(), Error);
}

TEST(SpliceOdd, BuildsValidOddFromEven) {
  for (int even : {2, 4, 6}) {
    const HamDecomposition odd =
        splice_odd_decomposition(hamiltonian_decomposition(even));
    EXPECT_EQ(odd.dims, even + 1);
    EXPECT_NO_THROW(odd.verify_or_throw());
  }
}

TEST(SpliceOdd, RejectsOddInput) {
  EXPECT_THROW(splice_odd_decomposition(hamiltonian_decomposition(3)), Error);
}

}  // namespace
}  // namespace hyperpath
