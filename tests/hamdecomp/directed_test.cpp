#include "hamdecomp/directed.hpp"

#include <gtest/gtest.h>

#include "base/bits.hpp"
#include "base/error.hpp"

namespace hyperpath {
namespace {

// Lemma 1: for n even (odd), n (n−1) copies of the 2^n-node directed cycle
// embed in Q_n with dilation 1 and congestion 1.
class Lemma1 : public ::testing::TestWithParam<int> {};

TEST_P(Lemma1, FamilySatisfiesLemma) {
  const int n = GetParam();
  DirectedCycleFamily fam(n);
  EXPECT_EQ(fam.dims(), n);
  EXPECT_EQ(fam.num_cycles(), n % 2 == 0 ? n : n - 1);
  EXPECT_NO_THROW(fam.verify_or_throw());
}

INSTANTIATE_TEST_SUITE_P(UpToQ9, Lemma1,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9));

TEST(DirectedCycles, PairedCyclesAreReverses) {
  DirectedCycleFamily fam(6);
  for (int c = 0; c < fam.num_cycles(); c += 2) {
    for (Node v = 0; v < 64; ++v) {
      EXPECT_EQ(fam.next(c + 1, fam.next(c, v)), v);
      EXPECT_EQ(fam.prev(c, v), fam.next(c + 1, v));
    }
  }
}

TEST(DirectedCycles, SequenceClosesAndCovers) {
  DirectedCycleFamily fam(4);
  for (int c = 0; c < fam.num_cycles(); ++c) {
    const auto seq = fam.sequence(c, 5);
    EXPECT_EQ(seq.size(), 16u);
    EXPECT_EQ(seq.front(), 5u);
    std::vector<bool> seen(16, false);
    for (Node v : seq) {
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
    }
  }
}

TEST(DirectedCycles, SequenceRejectsBadIndex) {
  DirectedCycleFamily fam(4);
  EXPECT_THROW(fam.sequence(4), Error);
  EXPECT_THROW(fam.sequence(-1), Error);
}

TEST(DirectedCycles, EvenDimensionUsesEveryDirectedEdgeExactlyOnce) {
  // For even n the family's cycles use all n·2^n directed edges: n cycles ×
  // 2^n edges each = n·2^n, and verify_or_throw already proves no reuse.
  DirectedCycleFamily fam(6);
  EXPECT_EQ(static_cast<std::uint64_t>(fam.num_cycles()) * pow2(6),
            6 * pow2(6));
  fam.verify_or_throw();
}

}  // namespace
}  // namespace hyperpath
