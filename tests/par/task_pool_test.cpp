#include "par/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace hyperpath::par {
namespace {

const int kThreadCounts[] = {1, 2, 3, 5, 8};

TEST(TaskPool, EveryIndexRunsExactlyOnce) {
  for (int t : kThreadCounts) {
    TaskPool pool(t);
    PoolScope scope(pool);
    for (std::size_t total : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
      for (std::size_t grain : {1ul, 3ul, 64ul, 1000ul}) {
        std::vector<std::atomic<int>> hits(total);
        parallel_for(0, total, grain, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          }
        });
        for (std::size_t i = 0; i < total; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "threads=" << t << " total=" << total << " grain=" << grain
              << " index=" << i;
        }
      }
    }
  }
}

TEST(TaskPool, ChunkBoundariesIndependentOfThreadCount) {
  // The (chunk, lo, hi) triples must be a pure function of (range, grain).
  const std::size_t total = 103, grain = 10;
  std::vector<std::pair<std::size_t, std::size_t>> expected;
  {
    TaskPool pool(1);
    PoolScope scope(pool);
    expected.assign(chunk_count(total, grain), {});
    parallel_for_chunks(0, total, grain,
                        [&](std::size_t c, std::size_t lo, std::size_t hi,
                            int) { expected[c] = {lo, hi}; });
  }
  for (int t : kThreadCounts) {
    TaskPool pool(t);
    PoolScope scope(pool);
    std::vector<std::pair<std::size_t, std::size_t>> got(
        chunk_count(total, grain));
    parallel_for_chunks(0, total, grain,
                        [&](std::size_t c, std::size_t lo, std::size_t hi,
                            int) { got[c] = {lo, hi}; });
    EXPECT_EQ(got, expected) << "threads=" << t;
  }
}

TEST(TaskPool, ReduceIsDeterministicForNonCommutativeFold) {
  // Floating-point sum in chunk order: any thread count must reproduce the
  // serial fold bit-for-bit.
  const std::size_t total = 5000;
  std::vector<double> x(total);
  for (std::size_t i = 0; i < total; ++i) {
    x[i] = 1.0 / static_cast<double>(i + 1);
  }
  const auto run = [&](int threads) {
    TaskPool pool(threads);
    PoolScope scope(pool);
    return parallel_reduce<double>(
        0, total, 17, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0;
          for (std::size_t i = lo; i < hi; ++i) s += x[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = run(1);
  for (int t : kThreadCounts) {
    const double got = run(t);
    EXPECT_EQ(serial, got) << "threads=" << t;  // exact, not near
  }
}

TEST(TaskPool, RethrowsLowestThrowingChunk) {
  for (int t : kThreadCounts) {
    TaskPool pool(t);
    PoolScope scope(pool);
    // Chunks 13 and 37 both throw; chunk 13's message must always win.
    for (int repeat = 0; repeat < 5; ++repeat) {
      try {
        parallel_for_chunks(0, 100, 1,
                            [&](std::size_t c, std::size_t, std::size_t,
                                int) {
                              if (c == 13 || c == 37) {
                                throw std::runtime_error(
                                    "chunk " + std::to_string(c));
                              }
                            });
        FAIL() << "no exception";
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "chunk 13") << "threads=" << t;
      }
    }
  }
}

TEST(TaskPool, NestedRegionsRunInline) {
  TaskPool pool(4);
  PoolScope scope(pool);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(0, 8, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // Inner region from inside a running region: must execute inline
      // (worker stays fixed) and still cover its whole range.
      parallel_for_chunks(0, 8, 1,
                          [&](std::size_t c, std::size_t, std::size_t,
                              int w) {
                            EXPECT_EQ(w, 0);  // inline collapse
                            hits[i * 8 + c].fetch_add(
                                1, std::memory_order_relaxed);
                          });
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskPool, ResolveThreadsPrecedence) {
  EXPECT_EQ(TaskPool::resolve_threads(3), 3);
  EXPECT_EQ(TaskPool::resolve_threads(TaskPool::kMaxThreads + 10),
            TaskPool::kMaxThreads);

  ::setenv("HYPERPATH_THREADS", "5", 1);
  EXPECT_EQ(TaskPool::resolve_threads(0), 5);
  EXPECT_EQ(TaskPool::resolve_threads(2), 2);  // explicit beats env
  ::setenv("HYPERPATH_THREADS", "0", 1);       // invalid → hardware fallback
  EXPECT_GE(TaskPool::resolve_threads(0), 1);
  ::unsetenv("HYPERPATH_THREADS");
  EXPECT_GE(TaskPool::resolve_threads(0), 1);
}

TEST(TaskPool, StatsAccumulate) {
  TaskPool pool(2);
  PoolScope scope(pool);
  const auto before = pool.stats();
  parallel_for(0, 100, 1, [](std::size_t, std::size_t) {});
  const auto after = pool.stats();
  EXPECT_EQ(after.regions, before.regions + 1);
  EXPECT_EQ(after.tasks, before.tasks + 100);
  EXPECT_EQ(after.busy_seconds.size(), 2u);
}

TEST(TaskPool, PoolScopeRestoresPrevious) {
  TaskPool outer(2), inner(3);
  {
    PoolScope a(outer);
    EXPECT_EQ(current_pool().threads(), 2);
    {
      PoolScope b(inner);
      EXPECT_EQ(current_pool().threads(), 3);
    }
    EXPECT_EQ(current_pool().threads(), 2);
  }
  // After all scopes: back to the global pool.
  EXPECT_EQ(current_pool().threads(), global_threads());
}

TEST(TaskPool, SerialCollapseUsesWorkerZero) {
  TaskPool pool(1);
  PoolScope scope(pool);
  parallel_for_chunks(0, 10, 1,
                      [](std::size_t, std::size_t, std::size_t, int w) {
                        EXPECT_EQ(w, 0);
                      });
}

}  // namespace
}  // namespace hyperpath::par
