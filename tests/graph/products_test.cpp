#include "graph/products.hpp"

#include <gtest/gtest.h>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "base/moment.hpp"
#include "graph/builders.hpp"
#include "graph/hypercube.hpp"

namespace hyperpath {
namespace {

TEST(CrossProduct, PathTimesPathIsGrid) {
  const Digraph g = cross_product(symmetric_path(3), symmetric_path(4));
  const Digraph grid = grid_graph(GridSpec{{3, 4}, false});
  EXPECT_EQ(g, grid);
}

TEST(CrossProduct, CycleTimesCycleIsTorus) {
  const Digraph g = cross_product(symmetric_cycle(4), symmetric_cycle(5));
  const Digraph torus = grid_graph(GridSpec{{4, 5}, true});
  EXPECT_EQ(g, torus);
}

TEST(CrossProduct, HypercubeProduct) {
  // Q_2 × Q_3 = Q_5 (as the paper notes), under the id ⟨g,h⟩ = g·8 + h,
  // i.e. the Q_2 bits are the high bits.
  const Digraph q2 = Hypercube(2).to_digraph();
  const Digraph q3 = Hypercube(3).to_digraph();
  const Digraph q5 = Hypercube(5).to_digraph();
  EXPECT_EQ(cross_product(q2, q3), q5);
}

TEST(CrossProduct, DegreesAdd) {
  const Digraph g = cross_product(symmetric_cycle(5), symmetric_path(2));
  for (Node v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.out_degree(v), 3u);  // 2 (cycle) + 1 (path end)
  }
}

TEST(GeneralizedCrossProduct, EqualsStandardWhenUniform) {
  // If every row is G and every column is H... the generalized product is
  // defined for same-size factors; use the 4-cycle on both sides.
  const Digraph c4 = symmetric_cycle(4);
  const std::vector<Digraph> rows(4, c4), cols(4, c4);
  EXPECT_EQ(generalized_cross_product(rows, cols), cross_product(c4, c4));
}

TEST(GeneralizedCrossProduct, RowAndColumnInduceTheirGraphs) {
  // Row i should induce rows[i], column j should induce cols[j].
  const Node n = 4;
  const Digraph c4 = symmetric_cycle(4);
  const std::vector<Node> phi{1, 3, 0, 2};
  std::vector<Digraph> rows{c4, relabel(c4, phi), c4, relabel(c4, phi)};
  std::vector<Digraph> cols{relabel(c4, phi), c4, c4, c4};
  const Digraph x = generalized_cross_product(rows, cols);
  for (Node i = 0; i < n; ++i) {
    for (const Edge& e : rows[i].edges()) {
      EXPECT_TRUE(x.has_edge(product_vertex(i, e.from, n),
                             product_vertex(i, e.to, n)));
    }
  }
  for (Node j = 0; j < n; ++j) {
    for (const Edge& e : cols[j].edges()) {
      EXPECT_TRUE(x.has_edge(product_vertex(e.from, j, n),
                             product_vertex(e.to, j, n)));
    }
  }
  // Edge count: sum of row edges + column edges (they never coincide:
  // row edges move within a row, column edges across rows).
  std::size_t expected = 0;
  for (const auto& r : rows) expected += r.num_edges();
  for (const auto& c : cols) expected += c.num_edges();
  EXPECT_EQ(x.num_edges(), expected);
}

TEST(GeneralizedCrossProduct, RejectsMismatchedSizes) {
  const Digraph c4 = symmetric_cycle(4);
  const Digraph c5 = symmetric_cycle(5);
  EXPECT_THROW(
      generalized_cross_product({c4, c4, c4, c4}, {c4, c4, c4, c5}), Error);
  EXPECT_THROW(generalized_cross_product({c4}, {c4, c4}), Error);
}

TEST(InducedCrossProduct, CycleCase) {
  // G = directed 4-cycle (2^2 vertices), 2 copies given by the identity and
  // one nontrivial automorphism.  Rows/columns are selected by moments.
  const Digraph g = directed_cycle(4);
  const std::vector<std::vector<Node>> autos{{0, 1, 2, 3}, {1, 2, 3, 0}};
  const Digraph x = induced_cross_product(g, 2, autos);
  EXPECT_EQ(x.num_nodes(), 16u);
  // Every vertex has out-degree 2 (one row edge, one column edge).
  for (Node v = 0; v < 16; ++v) EXPECT_EQ(x.out_degree(v), 2u);
  // Row i carries copy M(i) % 2: rows 0,1 → copy M = 0,0... check row 2
  // (M(2) = 1): its induced cycle is the relabeled copy.
  const Node i = 2;
  EXPECT_EQ(moment(i) % 2, 1u);
  const Digraph copy1 = relabel(g, autos[1]);
  for (const Edge& e : copy1.edges()) {
    EXPECT_TRUE(
        x.has_edge(product_vertex(i, e.from, 4), product_vertex(i, e.to, 4)));
  }
}

TEST(InducedCrossProduct, RejectsBadArity) {
  const Digraph g = directed_cycle(4);
  EXPECT_THROW(induced_cross_product(g, 3, {{0, 1, 2, 3}}), Error);
  EXPECT_THROW(induced_cross_product(g, 2, {{0, 1, 2, 3}}), Error);
}

}  // namespace
}  // namespace hyperpath
