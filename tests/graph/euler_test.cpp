#include "graph/euler.hpp"

#include <gtest/gtest.h>

#include <map>

#include "base/error.hpp"
#include "base/rng.hpp"

namespace hyperpath {
namespace {

// Verifies that `tour` is an Eulerian circuit of g: closed, uses each edge
// exactly once.
void expect_valid_circuit(const EdgeList& g, const std::vector<Node>& tour) {
  ASSERT_EQ(tour.size(), g.edges.size() + 1);
  EXPECT_EQ(tour.front(), tour.back());
  std::map<std::pair<Node, Node>, int> remaining;
  for (const auto& e : g.edges) ++remaining[e];
  for (std::size_t i = 0; i + 1 < tour.size(); ++i) {
    auto it = remaining.find({tour[i], tour[i + 1]});
    ASSERT_NE(it, remaining.end()) << "tour uses absent edge";
    if (--it->second == 0) remaining.erase(it);
  }
  EXPECT_TRUE(remaining.empty());
}

TEST(Euler, DirectedTriangle) {
  EdgeList g{3, {{0, 1}, {1, 2}, {2, 0}}};
  EXPECT_TRUE(has_eulerian_circuit(g));
  expect_valid_circuit(g, eulerian_circuit(g, 0));
}

TEST(Euler, TwoTrianglesSharingANode) {
  EdgeList g{5, {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}, {4, 0}}};
  EXPECT_TRUE(has_eulerian_circuit(g));
  expect_valid_circuit(g, eulerian_circuit(g, 1));
}

TEST(Euler, ParallelEdgesAllowed) {
  EdgeList g{2, {{0, 1}, {0, 1}, {1, 0}, {1, 0}}};
  EXPECT_TRUE(has_eulerian_circuit(g));
  expect_valid_circuit(g, eulerian_circuit(g, 0));
}

TEST(Euler, UnbalancedHasNoCircuit) {
  EdgeList g{3, {{0, 1}, {1, 2}}};
  EXPECT_FALSE(has_eulerian_circuit(g));
  EXPECT_THROW(eulerian_circuit(g, 0), Error);
}

TEST(Euler, DisconnectedHasNoCircuit) {
  EdgeList g{4, {{0, 1}, {1, 0}, {2, 3}, {3, 2}}};
  EXPECT_FALSE(has_eulerian_circuit(g));
}

TEST(Euler, IsolatedNodesAreFine) {
  EdgeList g{5, {{0, 1}, {1, 0}}};
  EXPECT_TRUE(has_eulerian_circuit(g));
}

TEST(Euler, RandomBalancedGraphs) {
  // Union of random directed cycles through random subsets is balanced and,
  // if the cycles overlap, connected; we stitch them via node 0 to be sure.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const Node n = 12;
    EdgeList g{n, {}};
    for (int c = 0; c < 3; ++c) {
      auto perm = rng.permutation(n);
      // Make sure node 0 is on every cycle so the union is connected.
      std::vector<Node> cyc{0};
      for (Node v : perm) {
        if (v != 0 && rng.chance(0.6)) cyc.push_back(v);
      }
      if (cyc.size() < 2) cyc.push_back(1 + static_cast<Node>(rng.below(n - 1)));
      for (std::size_t i = 0; i < cyc.size(); ++i) {
        g.edges.emplace_back(cyc[i], cyc[(i + 1) % cyc.size()]);
      }
    }
    ASSERT_TRUE(has_eulerian_circuit(g)) << "trial " << trial;
    expect_valid_circuit(g, eulerian_circuit(g, 0));
  }
}

}  // namespace
}  // namespace hyperpath
