#include "graph/hypercube.hpp"

#include <gtest/gtest.h>

#include <set>

#include "base/error.hpp"
#include "graph/digraph.hpp"

namespace hyperpath {
namespace {

TEST(Hypercube, Counts) {
  const Hypercube q(4);
  EXPECT_EQ(q.dims(), 4);
  EXPECT_EQ(q.num_nodes(), 16u);
  EXPECT_EQ(q.num_directed_edges(), 64u);
  EXPECT_EQ(q.num_undirected_edges(), 32u);
}

TEST(Hypercube, NeighborsAndEdges) {
  const Hypercube q(5);
  EXPECT_EQ(q.neighbor(0b00000, 3), 0b01000u);
  EXPECT_TRUE(q.is_edge(0b00101, 0b00100));
  EXPECT_FALSE(q.is_edge(0b00101, 0b00110));
  EXPECT_FALSE(q.is_edge(7, 7));
  EXPECT_EQ(q.edge_dim(0b00101, 0b00001), 2);
  EXPECT_THROW(q.edge_dim(0, 3), Error);
}

TEST(Hypercube, EdgeIdsAreBijective) {
  const Hypercube q(4);
  std::set<std::uint64_t> ids;
  for (Node v = 0; v < q.num_nodes(); ++v) {
    for (Dim d = 0; d < q.dims(); ++d) {
      const auto id = q.edge_id(v, d);
      EXPECT_TRUE(ids.insert(id).second);
      EXPECT_LT(id, q.num_directed_edges());
      const auto [tail, dim] = q.edge_of_id(id);
      EXPECT_EQ(tail, v);
      EXPECT_EQ(dim, d);
    }
  }
  EXPECT_EQ(ids.size(), q.num_directed_edges());
}

TEST(Hypercube, EdgeIdFromEndpoints) {
  const Hypercube q(3);
  EXPECT_EQ(q.edge_id(Node{0b010}, Node{0b011}), q.edge_id(Node{0b010}, Dim{0}));
}

TEST(Hypercube, DistanceIsHamming) {
  const Hypercube q(8);
  EXPECT_EQ(q.distance(0, 0), 0);
  EXPECT_EQ(q.distance(0b10110, 0b00111), 2);
  EXPECT_EQ(q.distance(0, 0xFF), 8);
}

TEST(Hypercube, ToDigraphMatches) {
  const Hypercube q(3);
  const Digraph g = q.to_digraph();
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_edges(), 24u);
  for (Node v = 0; v < 8; ++v) {
    EXPECT_EQ(g.out_degree(v), 3u);
    for (Dim d = 0; d < 3; ++d) {
      EXPECT_TRUE(g.has_edge(v, q.neighbor(v, d)));
    }
  }
}

TEST(Hypercube, RejectsBadDims) {
  EXPECT_THROW(Hypercube(0), Error);
  EXPECT_THROW(Hypercube(31), Error);
}

TEST(HostPathCheck, ValidPaths) {
  const Hypercube q(4);
  EXPECT_TRUE(is_valid_path(q, {0b0000}));
  EXPECT_TRUE(is_valid_path(q, {0b0000, 0b0001, 0b0011}));
  EXPECT_FALSE(is_valid_path(q, {}));
  EXPECT_FALSE(is_valid_path(q, {0b0000, 0b0011}));   // two bits flip
  EXPECT_FALSE(is_valid_path(q, {0b0000, 0b10000}));  // out of Q_4
}

TEST(HostPathCheck, EdgeDisjointness) {
  const Hypercube q(3);
  // Two node-sharing but edge-disjoint paths 000→011.
  const std::vector<HostPath> ok{{0b000, 0b001, 0b011}, {0b000, 0b010, 0b011}};
  EXPECT_TRUE(paths_edge_disjoint(q, ok));
  // Same directed edge twice.
  const std::vector<HostPath> bad{{0b000, 0b001, 0b011},
                                  {0b000, 0b001, 0b101}};
  EXPECT_FALSE(paths_edge_disjoint(q, bad));
  // Opposite directions of one link are distinct directed edges.
  const std::vector<HostPath> opposite{{0b000, 0b001}, {0b001, 0b000}};
  EXPECT_TRUE(paths_edge_disjoint(q, opposite));
}

}  // namespace
}  // namespace hyperpath
