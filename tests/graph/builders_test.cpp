#include "graph/builders.hpp"

#include <gtest/gtest.h>

#include <queue>

#include "base/bits.hpp"
#include "base/error.hpp"

namespace hyperpath {
namespace {

// Breadth-first reachability count treating edges as undirected.
std::size_t undirected_component_size(const Digraph& g, Node start) {
  std::vector<bool> seen(g.num_nodes(), false);
  std::queue<Node> q;
  q.push(start);
  seen[start] = true;
  std::size_t count = 0;
  // Build symmetric reachability via forward edges only; all our symmetric
  // builders add both directions, so forward traversal suffices there.  For
  // directed graphs this measures forward reachability.
  while (!q.empty()) {
    const Node u = q.front();
    q.pop();
    ++count;
    for (Node v : g.out_neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        q.push(v);
      }
    }
  }
  return count;
}

TEST(Builders, DirectedCycle) {
  const Digraph g = directed_cycle(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  for (Node v = 0; v < 5; ++v) {
    EXPECT_EQ(g.out_degree(v), 1u);
    EXPECT_EQ(g.in_degree(v), 1u);
    EXPECT_TRUE(g.has_edge(v, (v + 1) % 5));
  }
}

TEST(Builders, SymmetricCycle) {
  const Digraph g = symmetric_cycle(6);
  EXPECT_EQ(g.num_edges(), 12u);
  for (Node v = 0; v < 6; ++v) EXPECT_EQ(g.out_degree(v), 2u);
}

TEST(Builders, Paths) {
  const Digraph d = directed_path(4);
  EXPECT_EQ(d.num_edges(), 3u);
  EXPECT_EQ(d.out_degree(3), 0u);
  const Digraph s = symmetric_path(4);
  EXPECT_EQ(s.num_edges(), 6u);
  EXPECT_EQ(s.out_degree(0), 1u);
  EXPECT_EQ(s.out_degree(1), 2u);
}

TEST(GridSpec, Indexing) {
  const GridSpec spec{{3, 4, 5}, false};
  EXPECT_EQ(spec.num_nodes(), 60u);
  EXPECT_EQ(spec.num_axes(), 3);
  for (Node v = 0; v < 60; ++v) {
    EXPECT_EQ(spec.index(spec.coords(v)), v);
  }
  EXPECT_EQ(spec.index({0, 0, 0}), 0u);
  EXPECT_EQ(spec.index({0, 0, 1}), 1u);
  EXPECT_EQ(spec.index({1, 0, 0}), 20u);
}

TEST(Builders, GridDegrees) {
  const Digraph g = grid_graph(GridSpec{{3, 3}, false});
  // Corner degree 2, edge degree 3, center degree 4 (each counted as
  // out-degree since the graph is symmetric).
  EXPECT_EQ(g.out_degree(0), 2u);  // (0,0)
  EXPECT_EQ(g.out_degree(1), 3u);  // (0,1)
  EXPECT_EQ(g.out_degree(4), 4u);  // (1,1)
  EXPECT_EQ(g.num_edges(), 2u * 12u);
}

TEST(Builders, TorusIsRegular) {
  const Digraph g = grid_graph(GridSpec{{4, 4}, true});
  for (Node v = 0; v < 16; ++v) EXPECT_EQ(g.out_degree(v), 4u);
  EXPECT_EQ(g.num_edges(), 64u);
}

TEST(Builders, TorusSideTwoHasNoDoubleEdge) {
  // A wrap edge on a side-2 axis would duplicate the +1 edge; the builder
  // must emit a single undirected pair there.
  const Digraph g = grid_graph(GridSpec{{2, 4}, true});
  for (Node v = 0; v < 8; ++v) EXPECT_EQ(g.out_degree(v), 3u);
}

TEST(Builders, DirectedGridHalvesTheEdges) {
  const GridSpec spec{{4, 4}, true};
  const Digraph sym = grid_graph(spec);
  const Digraph dir = grid_graph_directed(spec);
  EXPECT_EQ(dir.num_edges() * 2, sym.num_edges());
  // Every directed edge goes "+1" (or wraps side−1 → 0) along one axis.
  for (const Edge& e : dir.edges()) {
    const auto cf = spec.coords(e.from);
    const auto ct = spec.coords(e.to);
    int changed = 0;
    for (int a = 0; a < spec.num_axes(); ++a) {
      if (cf[a] == ct[a]) continue;
      ++changed;
      EXPECT_TRUE(ct[a] == cf[a] + 1 ||
                  (cf[a] == spec.sides[a] - 1 && ct[a] == 0));
    }
    EXPECT_EQ(changed, 1);
  }
}

TEST(Builders, DirectedTorusIsRegular) {
  const Digraph dir = grid_graph_directed(GridSpec{{4, 8}, true});
  for (Node v = 0; v < dir.num_nodes(); ++v) {
    EXPECT_EQ(dir.out_degree(v), 2u);
    EXPECT_EQ(dir.in_degree(v), 2u);
  }
}

TEST(Builders, GridConnected) {
  const Digraph g = grid_graph(GridSpec{{5, 7}, false});
  EXPECT_EQ(undirected_component_size(g, 0), 35u);
}

TEST(Builders, CompleteBinaryTree) {
  const Digraph g = complete_binary_tree(4);
  EXPECT_EQ(g.num_nodes(), 15u);
  EXPECT_EQ(g.num_edges(), 2u * 14u);
  EXPECT_EQ(g.out_degree(0), 2u);   // root
  EXPECT_EQ(g.out_degree(1), 3u);   // internal
  EXPECT_EQ(g.out_degree(7), 1u);   // leaf
  EXPECT_EQ(undirected_component_size(g, 0), 15u);
}

TEST(Builders, RandomBinaryTreeShape) {
  Rng rng(123);
  std::vector<Node> parent;
  const Digraph g = random_binary_tree(50, rng, &parent);
  EXPECT_EQ(g.num_nodes(), 50u);
  EXPECT_EQ(g.num_edges(), 2u * 49u);
  EXPECT_EQ(parent[0], kNoNode);
  std::vector<int> child_count(50, 0);
  for (Node v = 1; v < 50; ++v) {
    ASSERT_LT(parent[v], v);  // parents precede children in creation order
    ++child_count[parent[v]];
  }
  for (int c : child_count) EXPECT_LE(c, 2);
  EXPECT_EQ(undirected_component_size(g, 0), 50u);
}

TEST(Builders, CccStructure) {
  const int n = 3;
  const Digraph g = ccc_directed(n);
  const LevelColumnLayout lay = ccc_layout(n);
  EXPECT_EQ(g.num_nodes(), 24u);  // n·2^n
  EXPECT_EQ(g.num_edges(), 48u);  // out-degree 2 everywhere
  for (Node v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.out_degree(v), 2u);
    EXPECT_EQ(g.in_degree(v), 2u);
  }
  // Straight edge and cross edge of ⟨1, 5⟩: → ⟨2, 5⟩ and ⟨1, 5 ⊕ 2⟩ = ⟨1, 7⟩.
  EXPECT_TRUE(g.has_edge(lay.id(1, 5), lay.id(2, 5)));
  EXPECT_TRUE(g.has_edge(lay.id(1, 5), lay.id(1, 7)));
  // Cross edges are paired with their reverses.
  EXPECT_TRUE(g.has_edge(lay.id(1, 7), lay.id(1, 5)));
}

TEST(Builders, CccColumnsAreCycles) {
  const int n = 4;
  const Digraph g = ccc_directed(n);
  const LevelColumnLayout lay = ccc_layout(n);
  for (Node c = 0; c < pow2(n); ++c) {
    for (int l = 0; l < n; ++l) {
      EXPECT_TRUE(g.has_edge(lay.id(l, c), lay.id((l + 1) % n, c)));
    }
  }
}

TEST(Builders, CccSymmetricDegrees) {
  const Digraph g = ccc_symmetric(3);
  for (Node v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.out_degree(v), 3u);
}

TEST(Builders, ButterflyStructure) {
  const int n = 3;
  const Digraph g = butterfly_directed(n);
  const LevelColumnLayout lay = butterfly_layout(n);
  EXPECT_EQ(g.num_nodes(), 24u);
  for (Node v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.out_degree(v), 2u);
    EXPECT_EQ(g.in_degree(v), 2u);
  }
  EXPECT_TRUE(g.has_edge(lay.id(2, 1), lay.id(0, 1)));          // wrap straight
  EXPECT_TRUE(g.has_edge(lay.id(2, 1), lay.id(0, 1 ^ 4)));      // wrap cross
}

TEST(Builders, FftStructure) {
  const int n = 3;
  const Digraph g = fft_directed(n);
  const LevelColumnLayout lay = fft_layout(n);
  EXPECT_EQ(g.num_nodes(), 32u);  // (n+1)·2^n
  EXPECT_EQ(g.num_edges(), 48u);
  for (Node c = 0; c < 8; ++c) {
    EXPECT_EQ(g.out_degree(lay.id(n, c)), 0u);  // last level is a sink
    EXPECT_EQ(g.in_degree(lay.id(0, c)), 0u);   // first level is a source
  }
}

TEST(Builders, LayoutRoundTrip) {
  const LevelColumnLayout lay = ccc_layout(5);
  for (int l = 0; l < 5; ++l) {
    for (Node c = 0; c < 32; c += 3) {
      const Node v = lay.id(l, c);
      EXPECT_EQ(lay.level_of(v), l);
      EXPECT_EQ(lay.column_of(v), c);
    }
  }
}

TEST(Builders, Rejections) {
  EXPECT_THROW(directed_cycle(1), Error);
  EXPECT_THROW(ccc_directed(1), Error);
  EXPECT_THROW(ccc_symmetric(2), Error);
  EXPECT_THROW(butterfly_symmetric(2), Error);
  EXPECT_THROW(complete_binary_tree(0), Error);
}

}  // namespace
}  // namespace hyperpath
