#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include "base/error.hpp"

namespace hyperpath {
namespace {

Digraph triangle() {
  DigraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  return std::move(b).build();
}

TEST(Digraph, BasicCounts) {
  const Digraph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (Node v = 0; v < 3; ++v) {
    EXPECT_EQ(g.out_degree(v), 1u);
    EXPECT_EQ(g.in_degree(v), 1u);
  }
  EXPECT_EQ(g.max_out_degree(), 1u);
}

TEST(Digraph, EdgesSortedAndFindable) {
  DigraphBuilder b(4);
  b.add_edge(2, 1);
  b.add_edge(0, 3);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Digraph g = std::move(b).build();
  EXPECT_EQ(g.edge(0), (Edge{0, 1}));
  EXPECT_EQ(g.edge(1), (Edge{0, 3}));
  EXPECT_EQ(g.edge(2), (Edge{2, 1}));
  EXPECT_EQ(g.edge(3), (Edge{2, 3}));
  EXPECT_EQ(g.find_edge(2, 3), 3u);
  EXPECT_EQ(g.find_edge(3, 2), static_cast<std::size_t>(-1));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(Digraph, OutEdgeRangeConsecutive) {
  DigraphBuilder b(3);
  b.add_edge(1, 0);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  const Digraph g = std::move(b).build();
  const auto [f0, l0] = g.out_edge_range(0);
  EXPECT_EQ(l0 - f0, 1u);
  const auto [f1, l1] = g.out_edge_range(1);
  EXPECT_EQ(l1 - f1, 2u);
  const auto [f2, l2] = g.out_edge_range(2);
  EXPECT_EQ(l2 - f2, 0u);
}

TEST(Digraph, OutNeighborsSorted) {
  DigraphBuilder b(5);
  b.add_edge(0, 4);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  const Digraph g = std::move(b).build();
  EXPECT_EQ(g.out_neighbors(0), (std::vector<Node>{2, 3, 4}));
}

TEST(Digraph, RejectsSelfLoop) {
  DigraphBuilder b(2);
  b.add_edge(1, 1);
  EXPECT_THROW(std::move(b).build(), Error);
}

TEST(Digraph, RejectsDuplicate) {
  DigraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  EXPECT_THROW(std::move(b).build(), Error);
}

TEST(Digraph, RejectsOutOfRange) {
  DigraphBuilder b(2);
  b.add_edge(0, 2);
  EXPECT_THROW(std::move(b).build(), Error);
}

TEST(Digraph, EqualityIsIdentityIsomorphism) {
  EXPECT_EQ(triangle(), triangle());
  DigraphBuilder b(3);
  b.add_edge(0, 2);  // different orientation: the reverse triangle
  b.add_edge(2, 1);
  b.add_edge(1, 0);
  const Digraph rev = std::move(b).build();
  EXPECT_FALSE(triangle() == rev);  // isomorphic but not equal
}

TEST(Digraph, RelabelAppliesPermutation) {
  const std::vector<Node> phi{1, 2, 0};
  const Digraph g = relabel(triangle(), phi);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Digraph, RelabelIdentityIsEqual) {
  const std::vector<Node> id{0, 1, 2};
  EXPECT_EQ(relabel(triangle(), id), triangle());
}

TEST(Digraph, RelabelRejectsNonPermutation) {
  const std::vector<Node> bad{0, 0, 2};
  EXPECT_THROW(relabel(triangle(), bad), Error);
}

TEST(Digraph, IsPermutation) {
  EXPECT_TRUE(is_permutation(std::vector<Node>{2, 0, 1}, 3));
  EXPECT_FALSE(is_permutation(std::vector<Node>{2, 2, 1}, 3));
  EXPECT_FALSE(is_permutation(std::vector<Node>{0, 1}, 3));
  EXPECT_FALSE(is_permutation(std::vector<Node>{0, 1, 3}, 3));
}

TEST(Digraph, UndirectedAddsBothDirections) {
  DigraphBuilder b(2);
  b.add_undirected(0, 1);
  const Digraph g = std::move(b).build();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
}

}  // namespace
}  // namespace hyperpath
